package core

import (
	"fmt"
	"math/rand"
	"sync"

	"fungusdb/internal/clock"
	"fungusdb/internal/container"
	"fungusdb/internal/fungus"
	"fungusdb/internal/metrics"
	"fungusdb/internal/query"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// RotContainer is the shelf container that receives tuples distilled at
// rot time when DistillOnRot is set.
const RotContainer = "_rot"

// TableConfig configures CreateTable.
type TableConfig struct {
	// Schema is the user-attribute schema (required).
	Schema *tuple.Schema
	// Fungus is the decay law applied each tick. Nil means fungus.Null
	// (the unbounded fridge).
	Fungus fungus.Fungus
	// TickEvery is the table's decay period T: the fungus runs on every
	// TickEvery-th engine tick (0 and 1 both mean every tick). The
	// paper's clock is per-relation — "the extent of table R decays
	// with a periodic clock of T seconds" — so two tables of one DB can
	// rot on different cadences. Container-shelf decay is unaffected.
	TickEvery int
	// SegmentSize overrides the store segment capacity (0 = default).
	SegmentSize int
	// TouchOnRead restores freshness of every tuple a Peek query
	// returns, when the fungus supports refresh (fungus.Refresher).
	TouchOnRead bool
	// DistillOnRot absorbs rotting tuples into the RotContainer before
	// eviction — the paper's "inspect them once before removal".
	DistillOnRot bool
	// ContainerHalfLife is the decay half-life (ticks) of containers
	// created by this table; 0 means containers never decay.
	ContainerHalfLife float64
	// Digest sizes container sketches; the zero value takes defaults.
	Digest container.DigestConfig
	// Persist enables WAL + snapshot persistence (DB needs a Dir).
	Persist bool
	// CheckpointEvery writes a snapshot and truncates the WAL after
	// this many mutations (0 = only on Close).
	CheckpointEvery int
}

// TableTickReport summarises one decay cycle of one table.
type TableTickReport struct {
	Rotted              int
	Distilled           int
	Live                int
	ContainersDiscarded []string
}

// Table is one relation: extent, fungus, knowledge shelf, counters, and
// optional persistence. All methods are safe for concurrent use.
type Table struct {
	mu    sync.Mutex
	name  string
	cfg   TableConfig
	clk   clock.Clock
	rng   *rand.Rand
	store *storage.Store
	fng   fungus.Fungus
	shelf *container.Shelf
	ctrs  metrics.Counters

	dir       string
	log       *wal.Log
	mutations int
	closed    bool

	rotBuf []tuple.ID // reused across ticks
}

func newTable(name string, cfg TableConfig, clk clock.Clock, rng *rand.Rand, dir string) (*Table, error) {
	if cfg.Fungus == nil {
		cfg.Fungus = fungus.Null{}
	}
	if cfg.Digest == (container.DigestConfig{}) {
		cfg.Digest = container.DefaultDigestConfig()
	}
	var opts []storage.Option
	if cfg.SegmentSize > 0 {
		opts = append(opts, storage.WithSegmentSize(cfg.SegmentSize))
	}
	t := &Table{
		name: name,
		cfg:  cfg,
		clk:  clk,
		rng:  rng,
		fng:  cfg.Fungus,
		dir:  dir,
	}
	if dir != "" {
		store, err := wal.Recover(dir, cfg.Schema, opts...)
		if err != nil {
			return nil, fmt.Errorf("core: recover table %q: %w", name, err)
		}
		t.store = store
		log, err := wal.Open(walPath(dir))
		if err != nil {
			return nil, err
		}
		t.log = log
	} else {
		t.store = storage.New(cfg.Schema, opts...)
	}
	t.shelf = container.NewShelf(cfg.Schema, cfg.Digest, rng)
	return t, nil
}

func walPath(dir string) string { return dir + "/" + wal.LogFile }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.cfg.Schema }

// Shelf returns the table's knowledge containers.
func (t *Table) Shelf() *container.Shelf { return t.shelf }

// Len returns the live tuple count.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.Len()
}

// Bytes returns the approximate live extent size.
func (t *Table) Bytes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.Bytes()
}

// Counters returns a snapshot of lifetime event counters.
func (t *Table) Counters() metrics.Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ctrs
}

// StoreStats returns a snapshot of extent storage statistics.
func (t *Table) StoreStats() storage.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.Stats()
}

// Profile returns the freshness profile of the extent.
func (t *Table) Profile() metrics.FreshnessProfile {
	t.mu.Lock()
	defer t.mu.Unlock()
	return metrics.Profile(t.store)
}

// TimeSeries profiles the extent in n insertion-order buckets.
func (t *Table) TimeSeries(n int) []metrics.TimeBucket {
	t.mu.Lock()
	defer t.mu.Unlock()
	return metrics.TimeSeries(t.store, n)
}

// Insert appends one tuple with full freshness at the current tick.
func (t *Table) Insert(attrs []tuple.Value) (tuple.Tuple, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return tuple.Tuple{}, fmt.Errorf("core: table %q is closed", t.name)
	}
	tp, err := t.store.Insert(t.clk.Now(), attrs)
	if err != nil {
		return tuple.Tuple{}, err
	}
	t.ctrs.Inserted++
	if t.log != nil {
		if err := t.log.AppendInsert(tp); err != nil {
			return tuple.Tuple{}, err
		}
		if err := t.maybeCheckpointLocked(); err != nil {
			return tuple.Tuple{}, err
		}
	}
	return tp, nil
}

// Compile prepares a predicate against this table's schema. Compiled
// predicates can be reused across queries.
func (t *Table) Compile(where string) (*query.Predicate, error) {
	return query.Compile(where, t.cfg.Schema)
}

// QueryOpts tunes Query.
type QueryOpts struct {
	// Limit caps the answer set size; 0 means unlimited. In Consume
	// mode only the answered tuples are removed.
	Limit int
	// Distill names a knowledge container that absorbs the answer set
	// (created on first use with the table's container half-life).
	// Empty means no distillation.
	Distill string
}

// Query executes Q(T,R,P) with the given mode. In Consume mode every
// answered tuple is discarded from the extent immediately, implementing
// the second natural law; in Peek mode the extent is unchanged (and,
// with TouchOnRead, refreshed).
func (t *Table) Query(where string, mode query.Mode, opts ...QueryOpts) (*query.Result, error) {
	pred, err := query.Compile(where, t.cfg.Schema)
	if err != nil {
		return nil, err
	}
	return t.QueryPred(pred, mode, opts...)
}

// QueryPred is Query with a pre-compiled predicate.
func (t *Table) QueryPred(pred *query.Predicate, mode query.Mode, opts ...QueryOpts) (*query.Result, error) {
	var opt QueryOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, fmt.Errorf("core: table %q is closed", t.name)
	}

	res := &query.Result{Schema: t.cfg.Schema, Mode: mode}
	var matchErr error
	t.store.Scan(func(tp *tuple.Tuple) bool {
		res.Scanned++
		ok, err := pred.Match(tp)
		if err != nil {
			matchErr = err
			return false
		}
		if !ok {
			return true
		}
		res.Tuples = append(res.Tuples, tp.Clone())
		return opt.Limit == 0 || len(res.Tuples) < opt.Limit
	})
	if matchErr != nil {
		return nil, matchErr
	}
	t.ctrs.Queries++

	if opt.Distill != "" && len(res.Tuples) > 0 {
		if err := t.shelf.Absorb(opt.Distill, t.clk.Now(), t.cfg.ContainerHalfLife, res.Tuples); err != nil {
			return nil, err
		}
		if mode == query.Consume {
			t.ctrs.DistilledQuery += uint64(len(res.Tuples))
		}
	}

	switch mode {
	case query.Consume:
		for i := range res.Tuples {
			id := res.Tuples[i].ID
			if err := t.store.Evict(id); err != nil {
				return nil, fmt.Errorf("core: consume evict: %w", err)
			}
			if egi, ok := t.fng.(*fungus.EGI); ok {
				egi.Forget(id)
			}
			if t.log != nil {
				if err := t.log.AppendEvict(id); err != nil {
					return nil, err
				}
			}
		}
		t.ctrs.Consumed += uint64(len(res.Tuples))
		if t.log != nil {
			if err := t.maybeCheckpointLocked(); err != nil {
				return nil, err
			}
		}
	case query.Peek:
		if t.cfg.TouchOnRead {
			if r, ok := t.fng.(fungus.Refresher); ok {
				now := t.clk.Now()
				for i := range res.Tuples {
					r.Touch(now, t.store, res.Tuples[i].ID)
				}
			}
		}
	}
	return res, nil
}

// SQL parses and executes a SELECT statement against this table:
//
//	SELECT [CONSUME] <targets> FROM <this table>
//	       [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n]
//
// The CONSUME keyword applies the second natural law to everything the
// WHERE clause matches (the whole matching set leaves the extent, even
// when LIMIT truncates the output grid). An optional QueryOpts lets the
// caller distill the consumed set into a container.
func (t *Table) SQL(src string, opts ...QueryOpts) (*query.Grid, error) {
	stmt, err := query.ParseSelect(src)
	if err != nil {
		return nil, err
	}
	if stmt.From != t.name {
		return nil, fmt.Errorf("core: statement reads %q, table is %q", stmt.From, t.name)
	}
	pred, err := query.FromExpr(stmt.Where, t.cfg.Schema)
	if err != nil {
		return nil, err
	}
	mode := query.Peek
	if stmt.Consume {
		mode = query.Consume
	}
	res, err := t.QueryPred(pred, mode, opts...)
	if err != nil {
		return nil, err
	}
	return query.Execute(stmt, t.cfg.Schema, res.Tuples)
}

// Tick applies one decay cycle: the fungus runs, rotting tuples are
// distilled (when configured) and evicted, and the container shelf
// decays one step.
func (t *Table) Tick() (TableTickReport, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return TableTickReport{}, fmt.Errorf("core: table %q is closed", t.name)
	}
	now := t.clk.Now()

	t.rotBuf = t.rotBuf[:0]
	if t.cfg.TickEvery <= 1 || (t.ctrs.Ticks+1)%uint64(t.cfg.TickEvery) == 0 {
		t.rotBuf = t.fng.Tick(now, t.store, t.rng, t.rotBuf)
	}
	rep := TableTickReport{Rotted: len(t.rotBuf)}

	if len(t.rotBuf) > 0 && t.cfg.DistillOnRot {
		// "Inspect them once before removal": absorb the rotten tuples
		// into the rot container before the extent forgets them.
		doomed := make([]tuple.Tuple, 0, len(t.rotBuf))
		for _, id := range t.rotBuf {
			tp, err := t.store.Get(id)
			if err != nil {
				return rep, fmt.Errorf("core: rot fetch: %w", err)
			}
			doomed = append(doomed, tp)
		}
		if err := t.shelf.Absorb(RotContainer, now, t.cfg.ContainerHalfLife, doomed); err != nil {
			return rep, err
		}
		rep.Distilled = len(doomed)
		t.ctrs.DistilledRot += uint64(len(doomed))
	}
	for _, id := range t.rotBuf {
		if err := t.store.Evict(id); err != nil {
			return rep, fmt.Errorf("core: rot evict: %w", err)
		}
		if t.log != nil {
			if err := t.log.AppendEvict(id); err != nil {
				return rep, err
			}
		}
	}
	t.ctrs.Rotted += uint64(len(t.rotBuf))
	t.ctrs.Ticks++
	if t.log != nil && len(t.rotBuf) > 0 {
		if err := t.maybeCheckpointLocked(); err != nil {
			return rep, err
		}
	}

	rep.ContainersDiscarded = t.shelf.Tick()
	rep.Live = t.store.Len()
	return rep, nil
}

// Compact reclaims tombstone space in sealed segments.
func (t *Table) Compact() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.store.Compact()
}

// Checkpoint snapshots a persistent table and truncates its WAL.
func (t *Table) Checkpoint() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.checkpointLocked()
}

func (t *Table) checkpointLocked() error {
	if t.log == nil {
		return fmt.Errorf("core: table %q is not persistent", t.name)
	}
	if err := wal.Checkpoint(t.dir, t.store, t.log); err != nil {
		return err
	}
	t.mutations = 0
	return nil
}

func (t *Table) maybeCheckpointLocked() error {
	t.mutations++
	if t.cfg.CheckpointEvery > 0 && t.mutations >= t.cfg.CheckpointEvery {
		return t.checkpointLocked()
	}
	return nil
}

// Close checkpoints (when persistent) and releases the WAL. A closed
// table rejects further mutations.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	if t.log == nil {
		return nil
	}
	if err := t.checkpointLocked(); err != nil {
		t.log.Close()
		t.log = nil
		return err
	}
	err := t.log.Close()
	t.log = nil
	return err
}
