package core

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"fungusdb/internal/clock"
	"fungusdb/internal/container"
	"fungusdb/internal/fungus"
	"fungusdb/internal/metrics"
	"fungusdb/internal/query"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// RotContainer is the shelf container that receives tuples distilled at
// rot time when DistillOnRot is set.
const RotContainer = "_rot"

// TableConfig configures CreateTable.
type TableConfig struct {
	// Schema is the user-attribute schema (required).
	Schema *tuple.Schema
	// Fungus is the decay law applied each tick. Nil means fungus.Null
	// (the unbounded fridge). With Shards > 1 the law is instantiated
	// per shard via fungus.ForShard: stateful fungi (EGI) get one
	// instance per shard with the infection front scoped to that shard,
	// quotas are divided, and everything else is shared.
	Fungus fungus.Fungus
	// Shards splits the extent into this many hash/ID-residue shards,
	// each with its own store, lock, fungus instance and RNG stream, so
	// decay and scans parallelise across cores. 0 and 1 both mean one
	// shard, which behaves exactly like the pre-sharding engine.
	Shards int
	// TickEvery is the table's decay period T: the fungus runs on every
	// TickEvery-th engine tick (0 and 1 both mean every tick). The
	// paper's clock is per-relation — "the extent of table R decays
	// with a periodic clock of T seconds" — so two tables of one DB can
	// rot on different cadences. Container-shelf decay is unaffected.
	TickEvery int
	// SegmentSize overrides the store segment capacity (0 = default).
	SegmentSize int
	// TouchOnRead restores freshness of every tuple a Peek query
	// returns, when the fungus supports refresh (fungus.Refresher).
	TouchOnRead bool
	// DistillOnRot absorbs rotting tuples into the RotContainer before
	// eviction — the paper's "inspect them once before removal".
	DistillOnRot bool
	// ContainerHalfLife is the decay half-life (ticks) of containers
	// created by this table; 0 means containers never decay.
	ContainerHalfLife float64
	// Digest sizes container sketches; the zero value takes defaults.
	Digest container.DigestConfig
	// Persist enables WAL + snapshot persistence (DB needs a Dir).
	Persist bool
	// CheckpointEvery writes a snapshot and truncates the WAL after
	// this many mutations (0 = only on Close).
	CheckpointEvery int
	// Durability is this table's WAL sync level: none (buffered,
	// fsync only at checkpoint/close), grouped (a background
	// group-commit daemon fsyncs each shard log once per pending
	// window; InsertDurable returns a commit future), or strict (the
	// owning shard's log fsyncs before every append acknowledges).
	// wal.DurabilityDefault inherits DBConfig.Durability. Ignored for
	// non-persistent tables.
	Durability wal.DurabilityLevel
	// ReadOnly marks the table a replication replica: every local
	// mutation path (inserts, consume queries, distillation, local
	// decay) is rejected with ErrReadOnly, and state changes arrive
	// exclusively through the replica apply surface (see replica.go).
	// ReadOnly tables are in-memory (Persist must be false — their
	// durability is the leader's) and force TouchOnRead/DistillOnRot
	// off, since both would mutate state the leader never logged.
	ReadOnly bool
}

// TableTickReport summarises one decay cycle of one table.
type TableTickReport struct {
	Rotted              int
	Distilled           int
	Live                int
	ContainersDiscarded []string
}

// Table is one relation: a sharded extent, one fungus instance and RNG
// stream per shard, a knowledge shelf, counters, and optional
// persistence. All methods are safe for concurrent use.
//
// Locking model: shardMu[i] guards shard i's store, fungus and RNG;
// compound operations (a decay tick, a consume query) hold it for
// their whole critical section, so readers never observe half-applied
// laws. Cross-shard operations acquire shard locks in ascending index
// order. mu guards table metadata (counters, checkpoint scheduling)
// and orders shelf absorption; it is only ever acquired after shard
// locks, never before one. Each shard appends to its OWN WAL file
// under its own lock — no cross-shard mutex, no record interleaving —
// which keeps every shard log locally ID-ordered so recovery can
// replay the logs in parallel with no buffering or sorting.
type Table struct {
	name    string
	cfg     TableConfig
	clk     clock.Clock
	seed    int64 // the table's RNG seed, kept so a replica re-base can rebuild the streams
	store   *storage.ShardedStore
	shardMu []sync.RWMutex
	fngs    []fungus.Fungus // one per shard; fngs[0] may be the caller's instance
	rngs    []*rand.Rand    // one per shard; rngs[0] shares its source with the shelf
	rotBufs [][]tuple.ID    // per-shard scratch, reused across ticks
	shelf   *container.Shelf
	workers int

	plans *planCache // compiled statements/predicates, keyed by source

	mu        sync.Mutex // metadata: counters, mutations; orders shelf absorbs
	ctrs      metrics.Counters
	mutations int

	log        *wal.ShardedLog
	durability wal.DurabilityLevel // resolved: never DurabilityDefault
	gc         *wal.GroupCommitter // non-nil iff durability == grouped
	closed     atomic.Bool

	// tickLog: persistent tables with a real fungus log a RecTick per
	// shard per fungus run, so followers can replay decay. replayTicks:
	// this ReadOnly replica re-executes those ticks through its own
	// fungus (the law is replayable — see fungus.Replayable) instead of
	// waiting for the leader's evict records.
	tickLog     bool
	replayTicks bool
}

func newTable(name string, cfg TableConfig, clk clock.Clock, seed int64, dir string, dbc DBConfig) (*Table, error) {
	if cfg.Fungus == nil {
		cfg.Fungus = fungus.Null{}
	}
	if cfg.Shards < 1 {
		cfg.Shards = 1
	}
	if cfg.Digest == (container.DigestConfig{}) {
		cfg.Digest = container.DefaultDigestConfig()
	}
	if cfg.ReadOnly {
		if cfg.Persist {
			return nil, fmt.Errorf("core: table %q: a read-only replica cannot persist (its durability is the leader's)", name)
		}
		// Both features mutate state the leader never ships: touch
		// rewrites freshness on reads, distill-on-rot feeds the shelf
		// from locally computed rot. A replica must not invent either.
		cfg.TouchOnRead = false
		cfg.DistillOnRot = false
	}
	workers := dbc.Workers
	if workers < 1 {
		workers = 1
	}
	var opts []storage.Option
	if cfg.SegmentSize > 0 {
		opts = append(opts, storage.WithSegmentSize(cfg.SegmentSize))
	}
	recoveryPar := dbc.RecoveryParallelism
	if recoveryPar < 1 {
		recoveryPar = workers
	}
	// Resolve the sync level: table spec wins, then the DB default,
	// then none (the pre-group-commit behaviour).
	durability := cfg.Durability
	if durability == wal.DurabilityDefault {
		durability = dbc.Durability
	}
	if durability == wal.DurabilityDefault {
		durability = wal.DurabilityNone
	}
	n := cfg.Shards
	_, isNull := cfg.Fungus.(fungus.Null)
	t := &Table{
		name:        name,
		cfg:         cfg,
		clk:         clk,
		seed:        seed,
		shardMu:     make([]sync.RWMutex, n),
		fngs:        make([]fungus.Fungus, n),
		rngs:        make([]*rand.Rand, n),
		rotBufs:     make([][]tuple.ID, n),
		workers:     workers,
		durability:  durability,
		plans:       newPlanCache(planCacheCap),
		tickLog:     !isNull,
		replayTicks: cfg.ReadOnly && fungus.Replayable(cfg.Fungus),
	}
	// Shard 0 draws from the table stream (shared with the shelf, via a
	// locked source); shard i > 0 gets its own stream derived from
	// (table seed, shard index). One-shard tables therefore reproduce
	// the pre-sharding engine bit for bit.
	t.rngs[0] = rand.New(newLockedSource(seed))
	for i := 1; i < n; i++ {
		t.rngs[i] = rand.New(rand.NewSource(seed*1099511628211 + int64(i)))
	}
	for i := 0; i < n; i++ {
		t.fngs[i] = fungus.ForShard(cfg.Fungus, i, n)
	}
	t.store = storage.NewSharded(cfg.Schema, n, opts...)
	if dir != "" {
		// RecoverSharded replays the per-shard logs in parallel (bounded
		// by recoveryPar) and leaves the directory in the canonical
		// per-shard layout, migrating old single-log directories and
		// re-routing records when the shard count changed.
		if err := wal.RecoverSharded(dir, t.store, recoveryPar); err != nil {
			return nil, fmt.Errorf("core: recover table %q: %w", name, err)
		}
		log, err := wal.OpenSharded(dir, n)
		if err != nil {
			return nil, err
		}
		t.log = log
		if durability == wal.DurabilityGrouped {
			t.gc = wal.NewGroupCommitter(log, wal.GroupCommitConfig{
				Interval:      dbc.GroupCommitInterval,
				SizeThreshold: dbc.GroupCommitSize,
			})
		}
	}
	t.shelf = container.NewShelf(cfg.Schema, cfg.Digest, t.rngs[0])
	return t, nil
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema.
func (t *Table) Schema() *tuple.Schema { return t.cfg.Schema }

// Shards returns the shard count.
func (t *Table) Shards() int { return t.store.NumShards() }

// ShardLens returns the live tuple count per shard — the balance gauge
// the /metrics endpoint exports, and the cheapest way to see a skewed
// rotation. Each shard is read under its own lock.
func (t *Table) ShardLens() []int {
	out := make([]int, t.store.NumShards())
	for i := range out {
		t.shardMu[i].RLock()
		out[i] = t.store.Shard(i).Len()
		t.shardMu[i].RUnlock()
	}
	return out
}

// Shelf returns the table's knowledge containers.
func (t *Table) Shelf() *container.Shelf { return t.shelf }

// lockAll write-locks every shard in index order (unlockAll releases
// in reverse); the pair is the whole-table critical section used by
// checkpoints, consume cuts and schema-level operations.
//
//fungusvet:acquires shardlock
func (t *Table) lockAll() {
	for i := range t.shardMu {
		t.shardMu[i].Lock()
	}
}

func (t *Table) unlockAll() {
	for i := len(t.shardMu) - 1; i >= 0; i-- {
		t.shardMu[i].Unlock()
	}
}

// rlockAll read-locks every shard in index order, for read paths that
// need a consistent cross-shard view.
//
//fungusvet:acquires shardlock
func (t *Table) rlockAll() {
	for i := range t.shardMu {
		t.shardMu[i].RLock()
	}
}

func (t *Table) runlockAll() {
	for i := len(t.shardMu) - 1; i >= 0; i-- {
		t.shardMu[i].RUnlock()
	}
}

// Len returns the live tuple count.
func (t *Table) Len() int {
	t.rlockAll()
	defer t.runlockAll()
	return t.store.Len()
}

// Bytes returns the approximate live extent size.
func (t *Table) Bytes() int {
	t.rlockAll()
	defer t.runlockAll()
	return t.store.Bytes()
}

// Counters returns a snapshot of lifetime event counters.
func (t *Table) Counters() metrics.Counters {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ctrs
}

// StoreStats returns a snapshot of extent storage statistics,
// aggregated over the shards.
func (t *Table) StoreStats() storage.Stats {
	t.rlockAll()
	defer t.runlockAll()
	return t.store.Stats()
}

// Profile returns the freshness profile of the extent.
func (t *Table) Profile() metrics.FreshnessProfile {
	t.rlockAll()
	defer t.runlockAll()
	return metrics.Profile(t.store)
}

// TimeSeries profiles the extent in n insertion-order buckets, merged
// across shards on the global time axis.
func (t *Table) TimeSeries(n int) []metrics.TimeBucket {
	t.rlockAll()
	defer t.runlockAll()
	return metrics.TimeSeries(t.store, n)
}

// errClosed is the uniform mutation-after-Close error.
func (t *Table) errClosed() error { return fmt.Errorf("core: table %q is closed", t.name) }

// noteAppendLocked applies the table's durability level to n records
// just appended to shard i's log: strict fsyncs shard i's log before
// returning, grouped registers the records with the group-commit
// window and returns its commit future, none does nothing (buffered).
// The caller holds shard i's lock and has already appended the records.
func (t *Table) noteAppendLocked(i, n int) (wal.CommitWait, error) {
	switch t.durability {
	case wal.DurabilityStrict:
		return wal.CommitWait{}, t.log.SyncShard(i)
	case wal.DurabilityGrouped:
		return t.gc.Note(i, n), nil
	}
	return wal.CommitWait{}, nil
}

// Insert appends one tuple with full freshness at the current tick. The
// tuple lands on the next shard in the round-robin rotation; only that
// shard's lock is taken, so inserts scale across shards. Under strict
// durability the record is fsynced before Insert returns; under grouped
// durability it joins the pending commit window (use InsertDurable to
// obtain the commit future).
func (t *Table) Insert(attrs []tuple.Value) (tuple.Tuple, error) {
	tp, _, err := t.InsertDurable(attrs)
	return tp, err
}

// InsertDurable is Insert returning the WAL commit future as well: the
// wait resolves once the record is durable (immediately for strict —
// the fsync already happened — and for non-persistent or durability-
// none tables, where there is nothing to wait for; after the window's
// batched fsync or a covering checkpoint for grouped).
func (t *Table) InsertDurable(attrs []tuple.Value) (tuple.Tuple, wal.CommitWait, error) {
	// Validate before claiming a rotation slot: a rejected row must not
	// burn a shard turn, or later tuples would take IDs out of arrival
	// order on the time axis.
	if err := t.cfg.Schema.Validate(attrs); err != nil {
		return tuple.Tuple{}, wal.CommitWait{}, err
	}
	if t.cfg.ReadOnly {
		return tuple.Tuple{}, wal.CommitWait{}, t.errReadOnly()
	}
	if t.closed.Load() {
		return tuple.Tuple{}, wal.CommitWait{}, t.errClosed()
	}
	now := t.clk.Now()
	i := t.store.NextShard()
	t.shardMu[i].Lock()
	if t.closed.Load() {
		t.shardMu[i].Unlock()
		return tuple.Tuple{}, wal.CommitWait{}, t.errClosed()
	}
	tp, err := t.store.InsertShard(i, now, attrs)
	inStore := err == nil
	var wait wal.CommitWait
	if err == nil && t.log != nil {
		if err = t.log.AppendInsert(i, tp); err == nil {
			wait, err = t.noteAppendLocked(i, 1)
		}
	}
	t.shardMu[i].Unlock()
	// Count every tuple that reached the store, even when logging it
	// failed afterwards — the tuple is live, and the conservation
	// invariant (inserted == live + rotted + consumed) must hold.
	if inStore {
		t.mu.Lock()
		t.ctrs.Inserted++
		due := t.noteMutationLocked(1)
		t.mu.Unlock()
		if err == nil && due {
			err = t.Checkpoint()
		}
	}
	if err != nil {
		return tuple.Tuple{}, wal.CommitWait{}, err
	}
	return tp, wait, nil
}

// InsertBatch appends a batch of rows, grouping them by destination
// shard so each shard's lock is taken once per batch instead of once
// per row, and the shard groups insert in parallel. Rows are dealt
// round-robin from the current rotation point, so a single-threaded
// batch gets the same IDs row-at-a-time Insert would have assigned. It
// returns one tuple per row, in row order. On error the batch may be
// partially applied (the error names the first failing shard group);
// returned tuples of failed rows are zero-valued.
func (t *Table) InsertBatch(rows [][]tuple.Value) ([]tuple.Tuple, error) {
	tps, _, err := t.InsertBatchDurable(rows)
	return tps, err
}

// InsertBatchDurable is InsertBatch returning one WAL commit future
// covering the whole batch (see InsertDurable for the per-level wait
// semantics). Shard groups note their appends independently, so a
// batch straddling a group-commit window swap waits on every window it
// touched.
func (t *Table) InsertBatchDurable(rows [][]tuple.Value) ([]tuple.Tuple, wal.CommitWait, error) {
	if len(rows) == 0 {
		return nil, wal.CommitWait{}, nil
	}
	// Validate every row before dealing rotation slots (see Insert).
	for r, row := range rows {
		if err := t.cfg.Schema.Validate(row); err != nil {
			return nil, wal.CommitWait{}, fmt.Errorf("core: batch row %d: %w", r, err)
		}
	}
	if t.cfg.ReadOnly {
		return nil, wal.CommitWait{}, t.errReadOnly()
	}
	if t.closed.Load() {
		return nil, wal.CommitWait{}, t.errClosed()
	}
	now := t.clk.Now()
	n := t.store.NumShards()
	// Deal the batch round-robin, preserving global arrival order.
	groups := make([][]int, n)
	for r := range rows {
		i := t.store.NextShard()
		groups[i] = append(groups[i], r)
	}
	results := make([]tuple.Tuple, len(rows))
	waits := make([]wal.CommitWait, n)
	var inserted atomic.Int64
	err := fanOut(n, t.workers, func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		t.shardMu[i].Lock()
		defer t.shardMu[i].Unlock()
		if t.closed.Load() {
			return t.errClosed()
		}
		logged := 0
		for _, r := range groups[i] {
			tp, err := t.store.InsertShard(i, now, rows[r])
			if err != nil {
				return err
			}
			// Count before logging: a tuple that reached the store is
			// live and must be reflected in the conservation counters
			// even if its WAL append fails.
			results[r] = tp
			inserted.Add(1)
			if t.log != nil {
				if err := t.log.AppendInsert(i, tp); err != nil {
					return err
				}
				logged++
			}
		}
		if logged > 0 {
			var err error
			waits[i], err = t.noteAppendLocked(i, logged)
			return err
		}
		return nil
	})
	wait := wal.JoinWaits(waits)
	t.mu.Lock()
	t.ctrs.Inserted += uint64(inserted.Load())
	due := t.noteMutationLocked(int(inserted.Load()))
	t.mu.Unlock()
	if err != nil {
		return results, wait, err
	}
	if due {
		if err := t.Checkpoint(); err != nil {
			return results, wait, err
		}
	}
	return results, wait, nil
}

// NextShard claims the next slot in the table's round-robin insert
// rotation and returns the destination shard index. The ingest
// pipeline's bounded-queue producer claims slots at enqueue time so
// the shard rotation follows source arrival order even when per-shard
// consumers drain at different speeds. Safe for concurrent use.
func (t *Table) NextShard() int { return t.store.NextShard() }

// InsertShardBatch appends rows to shard i alone, under only shard i's
// lock — no other shard is touched, so a slow (contended) shard never
// blocks inserts to the others. Callers route rows themselves, having
// claimed rotation slots via NextShard; the bounded-queue ingest
// consumers are the intended user. Rows are validated first; on error
// the batch may be partially applied and failed rows come back
// zero-valued, like InsertBatch.
func (t *Table) InsertShardBatch(i int, rows [][]tuple.Value) ([]tuple.Tuple, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	for r, row := range rows {
		if err := t.cfg.Schema.Validate(row); err != nil {
			return nil, fmt.Errorf("core: batch row %d: %w", r, err)
		}
	}
	if t.cfg.ReadOnly {
		return nil, t.errReadOnly()
	}
	if t.closed.Load() {
		return nil, t.errClosed()
	}
	now := t.clk.Now()
	results := make([]tuple.Tuple, len(rows))
	inserted, logged := 0, 0
	t.shardMu[i].Lock()
	var err error
	if t.closed.Load() {
		err = t.errClosed()
	} else {
		for r := range rows {
			tp, ierr := t.store.InsertShard(i, now, rows[r])
			if ierr != nil {
				err = ierr
				break
			}
			results[r] = tp
			inserted++
			if t.log != nil {
				if lerr := t.log.AppendInsert(i, tp); lerr != nil {
					err = lerr
					break
				}
				logged++
			}
		}
		if err == nil && logged > 0 {
			_, err = t.noteAppendLocked(i, logged)
		}
	}
	t.shardMu[i].Unlock()
	t.mu.Lock()
	t.ctrs.Inserted += uint64(inserted)
	due := t.noteMutationLocked(inserted)
	t.mu.Unlock()
	if err != nil {
		return results, err
	}
	if due {
		if err := t.Checkpoint(); err != nil {
			return results, err
		}
	}
	return results, nil
}

// Compile prepares a predicate against this table's schema. Compiled
// predicates can be reused across queries; results are cached in the
// table's plan LRU, so recompiling the same source is a map hit.
func (t *Table) Compile(where string) (*query.Predicate, error) {
	return t.cachedPredicate(where)
}

// QueryOpts tunes Query.
type QueryOpts struct {
	// Limit caps the answer set size; 0 means unlimited. In Consume
	// mode only the answered tuples are removed.
	Limit int
	// Distill names a knowledge container that absorbs the answer set
	// (created on first use with the table's container half-life).
	// Empty means no distillation.
	Distill string
	// NoPrune disables zone-map segment pruning for this execution,
	// forcing the scan to visit every live tuple. Pruning never
	// changes the answer set: a skipped segment provably holds no
	// match. Like any engine that skips data blocks, predicates are
	// only *evaluated* against visited tuples, so a query that would
	// fail solely because an unevaluable tuple (say, a NaN attribute
	// compared against a number) sits inside a fully-pruned segment
	// succeeds instead of erroring. This knob exists for benchmarks
	// and the property tests comparing the two paths.
	NoPrune bool
	// NoVectorize disables the columnar batch execution route for this
	// execution, forcing tuple-at-a-time matching. The two routes are
	// byte-identical by construction (same rows, same order, same error
	// text); the knob exists for benchmarks and the property tests
	// asserting exactly that.
	NoVectorize bool
}

// Query executes Q(T,R,P) with the given mode. In Consume mode every
// answered tuple is discarded from the extent immediately, implementing
// the second natural law; in Peek mode the extent is unchanged (and,
// with TouchOnRead, refreshed). The WHERE compilation is cached in the
// table's plan LRU, so repeated calls with the same source skip the
// parse.
func (t *Table) Query(where string, mode query.Mode, opts ...QueryOpts) (*query.Result, error) {
	pred, err := t.cachedPredicate(where)
	if err != nil {
		return nil, err
	}
	return t.QueryPred(pred, mode, opts...)
}

// QueryPred is Query with a pre-compiled predicate. It is a thin shim
// over the prepared plan/execute path: the predicate wraps into a raw
// scan plan, executes through the same router as SQL statements, and
// the streamed rows drain into the classical materialised Result.
// Peek queries scan the shards in parallel and merge the partial
// answers back into global insertion order; Consume queries hold every
// shard lock so the answer-and-discard step is one atomic cut across
// the whole extent.
func (t *Table) QueryPred(pred *query.Predicate, mode query.Mode, opts ...QueryOpts) (*query.Result, error) {
	var opt QueryOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	rows, err := t.execPlan(query.PlanPredicate(pred, mode), nil, opt)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	res := &query.Result{Schema: t.cfg.Schema, Mode: mode}
	for rows.Next() {
		res.Tuples = append(res.Tuples, *rows.Tuple())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	res.Scanned = rows.Scanned()
	return res, nil
}

// mergeByID k-way merges per-shard answer sets (each ID-ascending) into
// global insertion order, truncating to limit when limit > 0.
func mergeByID(parts [][]tuple.Tuple, limit int) []tuple.Tuple {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if limit > 0 && total > limit {
		total = limit
	}
	if len(parts) == 1 {
		return parts[0][:total]
	}
	out := make([]tuple.Tuple, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] < len(p) && (best < 0 || p[idx[i]].ID < parts[best][idx[best]].ID) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// touchAnswered refreshes the answered tuples, shard by shard, through
// each shard's own fungus instance ("data being taken care of by its
// owner"). Tuples consumed or rotted since the scan are skipped by the
// refresher's own not-found handling.
func (t *Table) touchAnswered(answered []tuple.Tuple) {
	n := t.store.NumShards()
	byShard := make([][]tuple.ID, n)
	for i := range answered {
		s := t.store.ShardOf(answered[i].ID)
		byShard[s] = append(byShard[s], answered[i].ID)
	}
	now := t.clk.Now()
	_ = fanOut(n, t.workers, func(i int) error {
		if len(byShard[i]) == 0 {
			return nil
		}
		r, ok := t.fngs[i].(fungus.Refresher)
		if !ok {
			return nil
		}
		t.shardMu[i].Lock()
		defer t.shardMu[i].Unlock()
		for _, id := range byShard[i] {
			r.Touch(now, t.store.Shard(i), id)
		}
		return nil
	})
}

// SQL parses and executes a SELECT statement against this table:
//
//	SELECT [CONSUME] <targets> FROM <this table>
//	       [WHERE ...] [GROUP BY ...] [ORDER BY ...] [LIMIT n]
//
// The CONSUME keyword applies the second natural law to everything the
// WHERE clause matches (the whole matching set leaves the extent, even
// when LIMIT truncates the output grid). An optional QueryOpts lets the
// caller distill the consumed set into a container.
//
// Aggregate/GROUP BY peeks run the distributed path: each shard folds
// its matches into a partial query.Aggregator in parallel and the
// partials merge in shard order, so grouped analytics never
// materialise the matching tuples.
//
// SQL is a thin shim over the prepared path — it is exactly
// Prepare(src) followed by ExecuteOpts(opt) with the streamed rows
// drained into a Grid; callers that repeat a statement should Prepare
// it once themselves (the plan cache softens, but does not remove, the
// difference).
func (t *Table) SQL(src string, opts ...QueryOpts) (*query.Grid, error) {
	pq, err := t.Prepare(src)
	if err != nil {
		return nil, err
	}
	var opt QueryOpts
	if len(opts) > 0 {
		opt = opts[0]
	}
	rows, err := pq.ExecuteOpts(opt)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	g := &query.Grid{Cols: rows.Cols()}
	for rows.Next() {
		g.Rows = append(g.Rows, rows.Values())
	}
	if err := rows.Err(); err != nil {
		return nil, err
	}
	return g, nil
}

// Tick applies one decay cycle: every shard's fungus runs (in parallel
// across the worker pool), rotting tuples are distilled (when
// configured) and evicted under their shard's lock, and the container
// shelf decays one step.
func (t *Table) Tick() (TableTickReport, error) {
	if t.closed.Load() {
		return TableTickReport{}, t.errClosed()
	}
	if t.cfg.ReadOnly {
		// A replica never decays locally: the leader's logged tick and
		// evict records drive its state (see ApplyShipped). DB-level
		// ticking degrades to a live-count report.
		t.rlockAll()
		live := t.store.Len()
		t.runlockAll()
		return TableTickReport{Live: live}, nil
	}
	now := t.clk.Now()
	// Claim this tick's ordinal and decide the TickEvery gate in one
	// critical section, so concurrent Tick calls each get a distinct
	// ordinal and the fungus runs exactly once per decay period.
	t.mu.Lock()
	t.ctrs.Ticks++
	runFungus := t.cfg.TickEvery <= 1 || t.ctrs.Ticks%uint64(t.cfg.TickEvery) == 0
	t.mu.Unlock()

	n := t.store.NumShards()
	doomed := make([][]tuple.Tuple, n)
	rotted := make([][]tuple.ID, n)
	if runFungus {
		err := fanOut(n, t.workers, func(i int) error {
			t.shardMu[i].Lock()
			defer t.shardMu[i].Unlock()
			if t.closed.Load() {
				return t.errClosed()
			}
			sh := t.store.Shard(i)
			logged := 0
			if t.log != nil && t.tickLog {
				// The tick record goes in BEFORE this run's evictions: a
				// follower replaying the tick re-derives the same rot set
				// itself, and the evict records that follow become
				// idempotent no-ops there.
				if err := t.log.AppendTick(i, uint64(now)); err != nil {
					return err
				}
				logged++
			}
			buf := t.fngs[i].Tick(now, sh, t.rngs[i], t.rotBufs[i][:0])
			t.rotBufs[i] = buf
			rotted[i] = buf
			if len(buf) == 0 {
				if logged > 0 {
					_, err := t.noteAppendLocked(i, logged)
					return err
				}
				return nil
			}
			if t.cfg.DistillOnRot {
				// "Inspect them once before removal": clone the rotten
				// tuples before the extent forgets them.
				dd := make([]tuple.Tuple, 0, len(buf))
				for _, id := range buf {
					tp, err := sh.Get(id)
					if err != nil {
						return fmt.Errorf("core: rot fetch: %w", err)
					}
					dd = append(dd, tp)
				}
				doomed[i] = dd
			}
			for _, id := range buf {
				if err := sh.Evict(id); err != nil {
					return fmt.Errorf("core: rot evict: %w", err)
				}
				if t.log != nil {
					if err := t.log.AppendEvict(i, id); err != nil {
						return err
					}
					logged++
				}
			}
			if logged > 0 {
				if _, err := t.noteAppendLocked(i, logged); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return TableTickReport{}, err
		}
	}

	rep := TableTickReport{}
	for i := 0; i < n; i++ {
		rep.Rotted += len(rotted[i])
	}

	t.mu.Lock()
	if t.cfg.DistillOnRot {
		// Absorb in ascending shard order: deterministic for a fixed
		// shard count, and identical to the pre-sharding engine at one
		// shard (the fungus and the shelf share one RNG stream there).
		for i := 0; i < n; i++ {
			if len(doomed[i]) == 0 {
				continue
			}
			if err := t.shelf.Absorb(RotContainer, now, t.cfg.ContainerHalfLife, doomed[i]); err != nil {
				t.mu.Unlock()
				return rep, err
			}
			rep.Distilled += len(doomed[i])
			t.ctrs.DistilledRot += uint64(len(doomed[i]))
		}
	}
	t.ctrs.Rotted += uint64(rep.Rotted)
	due := rep.Rotted > 0 && t.noteMutationLocked(1)
	t.mu.Unlock()
	if due {
		if err := t.Checkpoint(); err != nil {
			return rep, err
		}
	}

	rep.ContainersDiscarded = t.shelf.Tick()
	t.rlockAll()
	rep.Live = t.store.Len()
	t.runlockAll()
	return rep, nil
}

// WALInfo describes a table's persistence layout and durability state.
type WALInfo struct {
	// Persistent reports whether the table has a WAL at all.
	Persistent bool
	// LogShards is the number of per-shard WAL files.
	LogShards int
	// Generation is the committed snapshot generation (0 = no
	// checkpoint has completed yet).
	Generation uint64
	// SyncMode is the resolved durability level ("none", "grouped",
	// "strict").
	SyncMode string
	// GroupCommits counts fsync-backed group flushes (grouped mode
	// only).
	GroupCommits uint64
	// AvgGroupSize is the mean records per group commit — the
	// amortisation factor over per-append fsyncs (grouped mode only).
	AvgGroupSize float64
}

// WALInfo returns the table's current persistence layout; the zero
// value means the table is in-memory only (or closed).
func (t *Table) WALInfo() WALInfo {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.log == nil {
		return WALInfo{}
	}
	m := t.log.Manifest()
	info := WALInfo{
		Persistent: true,
		LogShards:  m.Shards,
		Generation: m.Generation,
		SyncMode:   t.durability.String(),
	}
	if t.gc != nil {
		st := t.gc.Stats()
		info.GroupCommits = st.Commits
		info.AvgGroupSize = st.AvgGroupSize()
	}
	return info
}

// Durability returns the table's resolved WAL sync level (never
// wal.DurabilityDefault).
func (t *Table) Durability() wal.DurabilityLevel { return t.durability }

// SyncWAL forces everything appended so far to disk, regardless of the
// durability level: grouped mode flushes the pending commit window
// (resolving its waits), the other modes fsync every shard log. No-op
// for in-memory tables. It takes no shard lock, so it can run
// concurrently with inserts — records appended after the call may or
// may not be covered.
func (t *Table) SyncWAL() error {
	t.mu.Lock()
	log, gc := t.log, t.gc
	t.mu.Unlock()
	if log == nil {
		return nil
	}
	if gc != nil {
		return gc.Flush()
	}
	return log.Sync()
}

// Compact reclaims tombstone space in sealed segments of every shard.
func (t *Table) Compact() int {
	t.lockAll()
	defer t.unlockAll()
	return t.store.Compact()
}

// noteMutationLocked counts n logged mutations and reports whether a
// checkpoint is due — batch inserts pass their row count so
// CheckpointEvery keeps the same cadence as row-at-a-time ingestion.
// Caller holds t.mu; the checkpoint itself must run without shard
// locks held (it takes all of them).
func (t *Table) noteMutationLocked(n int) bool {
	if t.log == nil || n <= 0 {
		return false
	}
	t.mutations += n
	if t.cfg.CheckpointEvery > 0 && t.mutations >= t.cfg.CheckpointEvery {
		t.mutations = 0
		return true
	}
	return false
}

// Checkpoint snapshots a persistent table (every shard concurrently,
// committed by the WAL manifest) and truncates the per-shard logs. All
// shard locks are held for the duration, so the snapshot set is one
// consistent cut and no append can fall between the snapshots and the
// truncation.
func (t *Table) Checkpoint() error {
	t.lockAll()
	defer t.unlockAll()
	return t.checkpointHeld()
}

// checkpointHeld writes the snapshot; the caller holds all shard locks.
func (t *Table) checkpointHeld() error {
	if t.log == nil {
		if t.closed.Load() {
			// The table closed while this checkpoint was pending; the
			// final Close checkpoint already captured every mutation
			// that landed before it took the shard locks.
			return nil
		}
		return fmt.Errorf("core: table %q is not persistent", t.name)
	}
	if err := t.log.Checkpoint(t.store, t.workers); err != nil {
		return err
	}
	if t.gc != nil {
		// The committed snapshots captured every appended record (all
		// shard locks are held, so nothing new can have been noted),
		// which makes the pending window durable without an fsync.
		t.gc.ResolveCheckpointed()
	}
	t.mu.Lock()
	t.mutations = 0
	t.mu.Unlock()
	return nil
}

// Close checkpoints (when persistent) and releases the WAL. A closed
// table rejects further mutations.
func (t *Table) Close() error {
	t.lockAll()
	defer t.unlockAll()
	if t.closed.Swap(true) {
		return nil
	}
	if t.log == nil {
		return nil
	}
	// Stop the group-commit daemon before the final checkpoint: its
	// shutdown flush fsyncs everything pending, and nothing can be
	// noted afterwards (all shard locks are held), so the daemon never
	// races the log files closing below.
	var gcErr error
	if t.gc != nil {
		gcErr = t.gc.Close()
	}
	err := t.checkpointHeld()
	if err == nil {
		err = gcErr
	}
	cerr := t.log.Close()
	// t.log and t.gc are read under shard locks (append paths) and
	// under t.mu (checkpoint scheduling, SyncWAL, WALInfo); Close holds
	// all shard locks, so taking t.mu too makes the nil-out visible to
	// both classes of reader.
	t.mu.Lock()
	t.log = nil
	t.gc = nil
	t.mu.Unlock()
	if err != nil {
		return err
	}
	return cerr
}
