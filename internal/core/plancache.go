package core

import (
	"container/list"
	"sync"
)

// planCacheCap bounds each table's compiled-statement cache. Plans are
// small (a parse tree plus expanded targets), so the cap is generous
// enough that steady workloads never evict, while an adversarial
// stream of distinct statements stays bounded.
const planCacheCap = 128

// planCache is a small LRU of compiled query artifacts (plans and
// predicates) keyed by source text. A table owns one: its schema never
// changes, so cached compilations stay valid for the table's lifetime,
// and repeated Query/SQL calls with the same source skip the parse and
// validation entirely. Safe for concurrent use.
type planCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used
	hits    uint64
	misses  uint64
}

type planCacheEntry struct {
	key string
	val any
}

func newPlanCache(capacity int) *planCache {
	return &planCache{
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		lru:     list.New(),
	}
}

// get returns the cached value for key, nil on miss.
func (c *planCache) get(key string) any {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).val
}

// put inserts key -> val, evicting the least recently used entry when
// the cache is full.
func (c *planCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*planCacheEntry).val = val
		c.lru.MoveToFront(el)
		return
	}
	if c.lru.Len() >= c.cap {
		oldest := c.lru.Back()
		if oldest != nil {
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*planCacheEntry).key)
		}
	}
	c.entries[key] = c.lru.PushFront(&planCacheEntry{key: key, val: val})
}

// Stats reports cache effectiveness.
func (c *planCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.lru.Len()
}
