package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
)

// These tests pin the engine-level invariants of the two natural laws
// under randomized operation interleavings.

// Property: conservation. At every point,
// inserted == live + rotted + consumed, and with DistillOnRot plus
// distilling consume queries, capture rate stays 1.0.
func TestQuickConservationIdentity(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		db, err := Open(DBConfig{Seed: seed})
		if err != nil {
			return false
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", TableConfig{
			Schema:       iotSchema,
			Fungus:       fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 2, DecayRate: 0.3, AgeBias: 2}),
			DistillOnRot: true,
		})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			switch op % 4 {
			case 0, 1:
				if _, err := tbl.Insert(Row(fmt.Sprintf("s-%d", rng.Intn(5)), rng.Float64()*100)); err != nil {
					return false
				}
			case 2:
				if _, err := db.Tick(); err != nil {
					return false
				}
			case 3:
				if _, err := tbl.Query("temp < 50", query.Consume, QueryOpts{Distill: "cold"}); err != nil {
					return false
				}
			}
			c := tbl.Counters()
			if c.Inserted != uint64(tbl.Len())+c.Rotted+c.Consumed {
				t.Logf("identity broken: %+v live=%d", c, tbl.Len())
				return false
			}
			if c.CaptureRate() != 1.0 {
				t.Logf("capture rate %v with full distillation", c.CaptureRate())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: monotone decay. Without touch-on-read, no tuple's freshness
// ever increases across ticks, and the set of live IDs only shrinks
// between inserts.
func TestQuickFreshnessMonotone(t *testing.T) {
	f := func(seed int64, nTicks uint8) bool {
		db, err := Open(DBConfig{Seed: seed})
		if err != nil {
			return false
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", TableConfig{
			Schema: iotSchema,
			Fungus: fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 1, DecayRate: 0.15, AgeBias: 2}),
		})
		if err != nil {
			return false
		}
		for i := 0; i < 60; i++ {
			tbl.Insert(Row("s", float64(i)))
		}
		prev := map[uint64]float64{}
		res, _ := tbl.Query("", query.Peek)
		for i := range res.Tuples {
			prev[uint64(res.Tuples[i].ID)] = float64(res.Tuples[i].F)
		}
		for k := 0; k < int(nTicks%40); k++ {
			if _, err := db.Tick(); err != nil {
				return false
			}
			res, err := tbl.Query("", query.Peek)
			if err != nil {
				return false
			}
			cur := map[uint64]float64{}
			for i := range res.Tuples {
				id := uint64(res.Tuples[i].ID)
				f := float64(res.Tuples[i].F)
				cur[id] = f
				before, seen := prev[id]
				if !seen {
					t.Logf("tuple %d appeared from nowhere", id)
					return false // resurrected or inserted (we insert none)
				}
				if f > before {
					t.Logf("tuple %d freshness rose %v -> %v", id, before, f)
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: consume partitions. Splitting the extent with a predicate
// and its negation via two consume queries yields disjoint answers that
// cover the extent exactly, leaving it empty.
func TestQuickConsumePartition(t *testing.T) {
	f := func(seed int64, cut uint8) bool {
		db, err := Open(DBConfig{Seed: seed})
		if err != nil {
			return false
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", TableConfig{Schema: iotSchema})
		if err != nil {
			return false
		}
		const n = 80
		for i := 0; i < n; i++ {
			tbl.Insert(Row("s", float64(i)))
		}
		pivot := float64(cut % 100)
		a, err := tbl.Query(fmt.Sprintf("temp < %g", pivot), query.Consume)
		if err != nil {
			return false
		}
		b, err := tbl.Query(fmt.Sprintf("NOT (temp < %g)", pivot), query.Consume)
		if err != nil {
			return false
		}
		if a.Len()+b.Len() != n || tbl.Len() != 0 {
			return false
		}
		seen := map[uint64]bool{}
		for i := range a.Tuples {
			seen[uint64(a.Tuples[i].ID)] = true
		}
		for i := range b.Tuples {
			if seen[uint64(b.Tuples[i].ID)] {
				return false // overlap
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SQL aggregates agree with manual aggregation over a peek
// result for arbitrary data.
func TestQuickSQLAggregatesAgree(t *testing.T) {
	f := func(seed int64) bool {
		db, err := Open(DBConfig{Seed: seed})
		if err != nil {
			return false
		}
		defer db.Close()
		tbl, err := db.CreateTable("t", TableConfig{Schema: iotSchema})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(90)
		var sum float64
		for i := 0; i < n; i++ {
			v := rng.NormFloat64() * 50
			sum += v
			tbl.Insert(Row("s", v))
		}
		g, err := tbl.SQL("SELECT COUNT(*) AS n, SUM(temp) AS s FROM t")
		if err != nil {
			return false
		}
		if g.Rows[0][0].AsInt() != int64(n) {
			return false
		}
		got := g.Rows[0][1].AsFloat()
		diff := got - sum
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
