package core

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

// loadIoT fills a fresh table with a deterministic spread of rows.
func loadIoT(t *testing.T, db *DB, name string, shards, n int) *Table {
	t.Helper()
	tbl, err := db.CreateTable(name, TableConfig{Schema: iotSchema, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(Row(fmt.Sprintf("d%d", i%7), float64(i%50))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// drainRows collects a prepared execution into a grid-shaped result.
func drainRows(t *testing.T, rows *query.Rows) (cols []string, out [][]tuple.Value) {
	t.Helper()
	defer rows.Close()
	cols = rows.Cols()
	for rows.Next() {
		row := rows.Values()
		cp := make([]tuple.Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	return cols, out
}

// TestPreparedMatchesSQL asserts the acceptance criterion: the legacy
// Table.SQL front door and a prepared Execute produce identical grids,
// across shard counts (including the shards=1 determinism case) and
// across the streaming, aggregate, ordered and consume routes.
func TestPreparedMatchesSQL(t *testing.T) {
	stmts := []string{
		"SELECT * FROM t",
		"SELECT device, temp FROM t WHERE temp >= 25",
		"SELECT device, temp FROM t WHERE temp >= 25 LIMIT 7",
		"SELECT device, temp FROM t WHERE temp >= 25 ORDER BY temp DESC, device LIMIT 5",
		"SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM t GROUP BY device",
		"SELECT COUNT(*) FROM t WHERE device LIKE 'd1%'",
	}
	for _, shards := range []int{1, 4} {
		for _, src := range stmts {
			// Two identical tables: one answers through SQL, one through
			// a prepared execution, so consume statements stay comparable.
			db := openDB(t)
			a := loadIoT(t, db, "t", shards, 300)
			g, err := a.SQL(src)
			if err != nil {
				t.Fatalf("shards=%d SQL(%q): %v", shards, src, err)
			}
			db2 := openDB(t)
			b := loadIoT(t, db2, "t", shards, 300)
			pq, err := b.Prepare(src)
			if err != nil {
				t.Fatalf("shards=%d Prepare(%q): %v", shards, src, err)
			}
			rows, err := pq.Execute()
			if err != nil {
				t.Fatalf("shards=%d Execute(%q): %v", shards, src, err)
			}
			cols, got := drainRows(t, rows)
			if !reflect.DeepEqual(cols, g.Cols) {
				t.Fatalf("shards=%d %q cols = %v, want %v", shards, src, cols, g.Cols)
			}
			if len(got) != len(g.Rows) {
				t.Fatalf("shards=%d %q rows = %d, want %d", shards, src, len(got), len(g.Rows))
			}
			for i := range got {
				if !reflect.DeepEqual(got[i], g.Rows[i]) {
					t.Fatalf("shards=%d %q row %d = %v, want %v", shards, src, i, got[i], g.Rows[i])
				}
			}
		}
	}
}

// TestPreparedConsumeMatchesQuery asserts CONSUME through the prepared
// path removes exactly what the classical consume query removes.
func TestPreparedConsumeMatchesQuery(t *testing.T) {
	db := openDB(t)
	a := loadIoT(t, db, "t", 4, 200)
	resA, err := a.Query("temp < 20", query.Consume)
	if err != nil {
		t.Fatal(err)
	}

	db2 := openDB(t)
	b := loadIoT(t, db2, "t", 4, 200)
	pq, err := b.Prepare("SELECT CONSUME * FROM t WHERE temp < 20")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	_, got := drainRows(t, rows)
	if len(got) != resA.Len() {
		t.Fatalf("consumed %d rows, classical path consumed %d", len(got), resA.Len())
	}
	if a.Len() != b.Len() {
		t.Fatalf("extents diverged: %d vs %d", a.Len(), b.Len())
	}
	if b.Counters().Consumed != a.Counters().Consumed {
		t.Fatalf("consumed counters diverged")
	}
}

// TestPreparedPlaceholders runs one prepared statement many times with
// different bindings and checks against per-binding ad-hoc queries.
func TestPreparedPlaceholders(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 4, 300)
	pq, err := tbl.Prepare("SELECT device, temp FROM t WHERE temp >= ? AND device = ?")
	if err != nil {
		t.Fatal(err)
	}
	if pq.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", pq.NumParams())
	}
	for _, c := range []struct {
		lo  float64
		dev string
	}{{10, "d1"}, {30, "d4"}, {49, "d0"}, {50, "d2"}} {
		rows, err := pq.Execute(tuple.Float(c.lo), tuple.String_(c.dev))
		if err != nil {
			t.Fatal(err)
		}
		_, got := drainRows(t, rows)
		g, err := tbl.SQL(fmt.Sprintf("SELECT device, temp FROM t WHERE temp >= %g AND device = '%s'", c.lo, c.dev))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(g.Rows) {
			t.Fatalf("binding %+v: %d rows, want %d", c, len(got), len(g.Rows))
		}
	}
	// Wrong arity fails before any scan.
	if _, err := pq.Execute(); err == nil {
		t.Fatal("missing parameters accepted")
	}
	if _, err := pq.Execute(tuple.Float(1), tuple.String_("d1"), tuple.Int(9)); err == nil {
		t.Fatal("extra parameters accepted")
	}
}

// TestStreamingDeliversInInsertionOrder drains a multi-shard stream
// and checks the k-way merge reproduces the global ID axis.
func TestStreamingDeliversInInsertionOrder(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 8, 5000)
	pq, err := tbl.Prepare("SELECT _id FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	n := 0
	last := int64(-1)
	for rows.Next() {
		id := rows.Values()[0].AsInt()
		if id <= last {
			t.Fatalf("IDs out of order: %d after %d", id, last)
		}
		last = id
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 5000 {
		t.Fatalf("streamed %d rows, want 5000", n)
	}
	if rows.Scanned() != 5000 {
		t.Fatalf("scanned = %d, want 5000", rows.Scanned())
	}
}

// TestStreamingEarlyCloseReleasesLocks abandons a stream mid-way and
// then mutates the table: Close must unwind the producer goroutines
// and their shard read locks promptly.
func TestStreamingEarlyCloseReleasesLocks(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 4, 4000)
	pq, err := tbl.Prepare("SELECT device FROM t")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rows.Next(); i++ {
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := tbl.Insert(Row("d0", 1.0))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("insert blocked after Rows.Close: shard locks leaked")
	}
}

// TestPlanCache asserts repeated compilations hit the LRU.
func TestPlanCache(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 2, 50)
	for i := 0; i < 5; i++ {
		if _, err := tbl.Query("temp > 10", query.Peek); err != nil {
			t.Fatal(err)
		}
		if _, err := tbl.SQL("SELECT COUNT(*) FROM t"); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses, size := tbl.PlanCacheStats()
	// First Query + first SQL miss; the other 4+4 hit.
	if misses != 2 || hits != 8 {
		t.Fatalf("cache hits=%d misses=%d size=%d, want 8/2", hits, misses, size)
	}
	if size != 2 {
		t.Fatalf("cache size = %d, want 2", size)
	}
}

// TestPlanCacheEviction fills past the cap and checks boundedness.
func TestPlanCacheEviction(t *testing.T) {
	c := newPlanCache(3)
	for i := 0; i < 10; i++ {
		c.put(fmt.Sprintf("k%d", i), i)
	}
	if _, _, size := c.stats(); size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
	if c.get("k0") != nil {
		t.Fatal("oldest entry survived eviction")
	}
	if c.get("k9") == nil {
		t.Fatal("newest entry evicted")
	}
	// Recency: touch k7, insert one more, k8 should fall out.
	if c.get("k7") == nil {
		t.Fatal("k7 missing")
	}
	c.put("k10", 10)
	if c.get("k8") != nil {
		t.Fatal("LRU evicted the recently used entry instead")
	}
	if c.get("k7") == nil {
		t.Fatal("recently used entry evicted")
	}
}

// TestPrepareAskThroughPlan drives the container ask path through the
// prepared API.
func TestPrepareAskThroughPlan(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 2, 100)
	if _, err := tbl.Query("temp >= 25", query.Consume, QueryOpts{Distill: "hot"}); err != nil {
		t.Fatal(err)
	}
	// Scalar question.
	pq, err := tbl.PrepareAsk("hot", "count")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.Execute()
	if err != nil {
		t.Fatal(err)
	}
	_, got := drainRows(t, rows)
	if len(got) != 1 || got[0][0].AsFloat() != 50 {
		t.Fatalf("count rows = %v, want one row of 50", got)
	}
	// Parameterised membership question, reusing one prepared ask.
	has, err := tbl.PrepareAsk("hot", "has:device:?")
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range []string{"d0", "d1"} {
		rows, err := has.Execute(tuple.String_(dev))
		if err != nil {
			t.Fatal(err)
		}
		_, got := drainRows(t, rows)
		if len(got) != 1 || !got[0][0].AsBool() {
			t.Fatalf("has:device:%s = %v, want true", dev, got)
		}
	}
	// Unknown container: typed error.
	missing, err := tbl.PrepareAsk("nosuch", "count")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := missing.Execute(); err == nil {
		t.Fatal("ask against missing container succeeded")
	}
	// Unknown column: compile-time error.
	if _, err := tbl.PrepareAsk("hot", "ndv:nosuch"); err == nil {
		t.Fatal("unknown ask column compiled")
	}
}

// TestPreparedWrongTable pins the From-mismatch error.
func TestPreparedWrongTable(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 1, 10)
	if _, err := tbl.Prepare("SELECT * FROM other"); err == nil {
		t.Fatal("cross-table statement prepared")
	}
}

// TestPreparedQueryConcurrentReuse executes one PreparedQuery from
// many goroutines — plans must be immutable and shareable.
func TestPreparedQueryConcurrentReuse(t *testing.T) {
	db := openDB(t)
	tbl := loadIoT(t, db, "t", 4, 1000)
	pq, err := tbl.Prepare("SELECT device, COUNT(*) AS n FROM t WHERE temp >= ? GROUP BY device")
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 20; i++ {
				rows, err := pq.Execute(tuple.Float(float64(i)))
				if err != nil {
					errs <- err
					return
				}
				for rows.Next() {
				}
				if err := rows.Close(); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
