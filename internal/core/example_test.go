package core_test

import (
	"fmt"
	"log"

	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

// Example shows the two natural laws end to end: a table that decays
// under a TTL fungus, and a consume query that distills what it reads.
func Example() {
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	tbl, err := db.CreateTable("readings", core.TableConfig{
		Schema: tuple.MustSchema(
			tuple.Column{Name: "device", Kind: tuple.KindString},
			tuple.Column{Name: "temp", Kind: tuple.KindFloat},
		),
		Fungus: fungus.TTL{Lifetime: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	for i := 0; i < 4; i++ {
		if _, err := tbl.Insert(core.Row("sensor-1", 20.0+float64(i))); err != nil {
			log.Fatal(err)
		}
	}

	// Law 2: consume the hot readings into a knowledge container.
	res, err := tbl.Query("temp >= 22", query.Consume, core.QueryOpts{Distill: "hot"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("consumed:", res.Len(), "left:", tbl.Len())

	// Law 1: after the TTL lifetime, the remainder rots away.
	db.Tick()
	db.Tick()
	fmt.Println("after 2 ticks:", tbl.Len())

	// The knowledge outlives the data.
	hot := tbl.Shelf().Get("hot").Digest
	fmt.Println("knowledge count:", hot.Count())
	// Output:
	// consumed: 2 left: 2
	// after 2 ticks: 0
	// knowledge count: 2
}

// ExampleTable_SQL shows the SQL surface, including freshness as a
// queryable system column.
func ExampleTable_SQL() {
	db, _ := core.Open(core.DBConfig{Seed: 1})
	defer db.Close()
	tbl, _ := db.CreateTable("clicks", core.TableConfig{
		Schema: tuple.MustSchema(
			tuple.Column{Name: "url", Kind: tuple.KindString},
			tuple.Column{Name: "ms", Kind: tuple.KindInt},
		),
	})
	for _, row := range [][]tuple.Value{
		core.Row("/home", 120),
		core.Row("/home", 80),
		core.Row("/shop", 300),
	} {
		if _, err := tbl.Insert(row); err != nil {
			log.Fatal(err)
		}
	}
	g, err := tbl.SQL("SELECT url, COUNT(*) AS hits, AVG(ms) AS avg FROM clicks GROUP BY url ORDER BY hits DESC")
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range g.Rows {
		fmt.Printf("%s %d %.0f\n", row[0].AsString(), row[1].AsInt(), row[2].AsFloat())
	}
	// Output:
	// /home 2 100
	// /shop 1 300
}
