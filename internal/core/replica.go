// Replica apply surface: how a read-only follower table ingests the
// leader's shipped WAL.
//
// The design mirrors crash recovery on purpose. Shipped bytes are raw
// WAL frames, decoded by the same wal code path recovery uses; inserts
// apply through storage.Restore (gap-tolerant, strictly increasing,
// idempotent under redelivery via ErrStaleRestore) and evictions
// through Evict (idempotent via ErrNotFound). The one replication-only
// record is the tick: a follower whose decay law is replayable (see
// fungus.Replayable) re-executes each logged fungus run against its own
// extent, reproducing the leader's freshness trajectory exactly — the
// leader's trailing rot-evict records then find nothing to evict and
// degrade into no-ops. Non-replayable laws skip tick replay and rely on
// those evict records instead: membership stays exact, freshness is
// approximate.
package core

import (
	"errors"
	"fmt"
	"math/rand"

	"fungusdb/internal/clock"
	"fungusdb/internal/fungus"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// ErrReadOnly rejects every local mutation of a replica table. The
// server maps it to the stable "read_only" error code.
var ErrReadOnly = errors.New("table is read-only (replication follower)")

func (t *Table) errReadOnly() error {
	return fmt.Errorf("core: table %q: %w", t.name, ErrReadOnly)
}

// ReadOnly reports whether the table is a replication replica.
func (t *Table) ReadOnly() bool { return t.cfg.ReadOnly }

// ReplayingTicks reports whether this replica re-executes the leader's
// logged fungus runs locally (replayable law) rather than relying on
// shipped evictions.
func (t *Table) ReplayingTicks() bool { return t.replayTicks }

// ShipLog exposes the table's sharded WAL to the replication leader
// endpoint, or nil for in-memory tables (nothing to ship). The shipper
// reads log files lock-free; a concurrent Close simply makes its reads
// fail and the stream end.
func (t *Table) ShipLog() *wal.ShardedLog {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.log
}

// ApplyStats counts what one ApplyShipped call did.
type ApplyStats struct {
	Inserts int // tuples restored into the extent
	Evicts  int // leader evictions applied
	Ticks   int // fungus runs replayed locally
	Rotted  int // tuples rotted by replayed ticks
	Skipped int // idempotent re-deliveries (stale insert / absent evict)
}

// ApplyShipped applies a batch of shipped WAL frames (whole, valid
// frames — the shape the wire delivers) to shard i of a replica table.
// It is the follower-side twin of the recovery replay loop and holds
// shard i's write lock for the whole batch, so readers see each batch
// atomically.
func (t *Table) ApplyShipped(i int, frames []byte) (ApplyStats, error) {
	if !t.cfg.ReadOnly {
		return ApplyStats{}, fmt.Errorf("core: table %q is not a replica", t.name)
	}
	if t.closed.Load() {
		return ApplyStats{}, t.errClosed()
	}
	var st ApplyStats
	t.shardMu[i].Lock()
	sh := t.store.Shard(i)
	err := wal.DecodeFrames(frames, func(rec wal.Rec) error {
		switch rec.Type {
		case wal.RecInsert:
			if err := sh.Restore(rec.Tuple); err != nil {
				if errors.Is(err, storage.ErrStaleRestore) {
					st.Skipped++
					return nil
				}
				return err
			}
			st.Inserts++
			return nil
		case wal.RecEvict:
			if err := sh.Evict(rec.ID); err != nil {
				if errors.Is(err, storage.ErrNotFound) {
					st.Skipped++ // already rotted by a replayed tick, or re-delivered
					return nil
				}
				return err
			}
			st.Evicts++
			return nil
		case wal.RecTick:
			if !t.replayTicks {
				return nil // non-replayable law: the leader's evicts carry the rot
			}
			buf := t.fngs[i].Tick(clock.Tick(rec.Now), sh, t.rngs[i], t.rotBufs[i][:0])
			t.rotBufs[i] = buf
			for _, id := range buf {
				if err := sh.Evict(id); err != nil {
					return fmt.Errorf("core: replayed rot evict: %w", err)
				}
			}
			st.Ticks++
			st.Rotted += len(buf)
			return nil
		}
		return fmt.Errorf("core: apply: unknown record %d", rec.Type)
	})
	t.shardMu[i].Unlock()
	t.mu.Lock()
	t.ctrs.Inserted += uint64(st.Inserts)
	t.ctrs.Consumed += uint64(st.Evicts)
	t.ctrs.Rotted += uint64(st.Rotted)
	t.ctrs.Ticks += uint64(st.Ticks)
	t.mu.Unlock()
	return st, err
}

// ResetReplica discards a replica's entire extent and rebuilds its
// fungus instances and RNG streams exactly as table creation did, so a
// snapshot re-base starts from the same initial conditions as a fresh
// join. Counters survive (they are monitoring state, not data).
func (t *Table) ResetReplica() error {
	if !t.cfg.ReadOnly {
		return fmt.Errorf("core: table %q is not a replica", t.name)
	}
	if t.closed.Load() {
		return t.errClosed()
	}
	t.lockAll()
	defer t.unlockAll()
	n := t.cfg.Shards
	var opts []storage.Option
	if t.cfg.SegmentSize > 0 {
		opts = append(opts, storage.WithSegmentSize(t.cfg.SegmentSize))
	}
	t.store = storage.NewSharded(t.cfg.Schema, n, opts...)
	t.rngs[0] = rand.New(newLockedSource(t.seed))
	for i := 1; i < n; i++ {
		t.rngs[i] = rand.New(rand.NewSource(t.seed*1099511628211 + int64(i)))
	}
	for i := 0; i < n; i++ {
		t.fngs[i] = fungus.ForShard(t.cfg.Fungus, i, n)
	}
	return nil
}

// ApplyShardSnapshot restores one shard of a shipped snapshot into a
// just-reset replica and advances that shard's allocation cursor to
// nextID (the leader manifest's per-shard cursor, so IDs evicted before
// the snapshot are never seen as gaps). Call FinishRebase after the
// last shard.
func (t *Table) ApplyShardSnapshot(i int, blob []byte, nextID uint64) error {
	if !t.cfg.ReadOnly {
		return fmt.Errorf("core: table %q is not a replica", t.name)
	}
	t.shardMu[i].Lock()
	defer t.shardMu[i].Unlock()
	sh := t.store.Shard(i)
	if len(blob) > 0 {
		hdrNext, err := wal.DecodeSnapshot(blob, sh)
		if err != nil {
			return fmt.Errorf("core: rebase shard %d: %w", i, err)
		}
		sh.AdvanceNextID(hdrNext)
	}
	sh.AdvanceNextID(tuple.ID(nextID))
	return nil
}

// FinishRebase completes a snapshot re-base (the FinishRestore of the
// recovery twin): sparse tail segments seal, and the shard rotation
// cursor re-aims.
func (t *Table) FinishRebase() {
	t.lockAll()
	defer t.unlockAll()
	t.store.FinishRestore()
}

// DumpShardSnapshot writes shard i's current state in the snapshot file
// format under the shard's read lock. The convergence harness uses it
// to compare leader and follower byte-for-byte; it is also a handy
// debugging export.
func (t *Table) DumpShardSnapshot(i int, path string) error {
	t.shardMu[i].RLock()
	defer t.shardMu[i].RUnlock()
	return wal.WriteSnapshot(path, t.store.Shard(i))
}
