package core

import (
	"fmt"
	"strings"
	"testing"

	"fungusdb/internal/fungus"
	"fungusdb/internal/tuple"
)

var pruneSchema = tuple.MustSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt},
	tuple.Column{Name: "v", Kind: tuple.KindFloat},
	tuple.Column{Name: "name", Kind: tuple.KindString},
)

// drainValues runs a prepared query and renders every row, so result
// sets compare exactly (values and order).
func drainValues(t *testing.T, pq *PreparedQuery, opt QueryOpts, params ...tuple.Value) ([]string, int) {
	t.Helper()
	rows, err := pq.ExecuteOpts(opt, params...)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		var sb strings.Builder
		for i, v := range rows.Values() {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		out = append(out, sb.String())
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows: %v", err)
	}
	return out, rows.Scanned()
}

// TestPrunedScanEquivalenceUnderChurn is the invalidation property
// test: across decay-rot, consume-on-query eviction and compaction, a
// pruned scan must return exactly what the unpruned scan returns — a
// pruned segment may never hide a matching tuple. It also proves the
// compiled matcher agrees with the interpreted predicate path at
// shards=1 (QueryPred goes through the same compiled closures;
// query.Execute's reference semantics are property-tested in
// internal/query).
func TestPrunedScanEquivalenceUnderChurn(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openDB(t)
			tbl, err := db.CreateTable("t", TableConfig{
				Schema:      pruneSchema,
				Fungus:      fungus.TTL{Lifetime: 9},
				Shards:      shards,
				SegmentSize: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			seq := 0
			insert := func(n int) {
				rows := make([][]tuple.Value, n)
				for i := range rows {
					rows[i] = Row(seq, float64(seq%97), fmt.Sprintf("name-%d", seq%11))
					seq++
				}
				if _, err := tbl.InsertBatch(rows); err != nil {
					t.Fatal(err)
				}
			}
			queries := func() []string {
				hi := seq
				return []string{
					fmt.Sprintf("SELECT k, v, name FROM t WHERE k >= %d", hi-hi/10-1),
					fmt.Sprintf("SELECT k FROM t WHERE k < %d", hi/10+1),
					fmt.Sprintf("SELECT k, name FROM t WHERE k BETWEEN %d AND %d", hi/3, hi/2),
					"SELECT k FROM t WHERE name = \"name-3\"",
					"SELECT k FROM t WHERE name IN (\"name-1\", \"name-7\", \"nope\")",
					fmt.Sprintf("SELECT k FROM t WHERE _id < %d", hi/4+1),
					fmt.Sprintf("SELECT k FROM t WHERE _t >= %d", int64(db.Now())-2),
					"SELECT k FROM t WHERE v > 50.0",                   // unprunable: sanity
					fmt.Sprintf("SELECT k FROM t WHERE k = %d", hi+50), // matches nothing
					fmt.Sprintf("SELECT COUNT(*) AS n, SUM(v) AS s FROM t WHERE k >= %d", hi-hi/5-1),
				}
			}
			check := func(stage string) {
				t.Helper()
				for _, src := range queries() {
					pq, err := tbl.Prepare(src)
					if err != nil {
						t.Fatalf("%s: %q: %v", stage, src, err)
					}
					pruned, scannedP := drainValues(t, pq, QueryOpts{})
					plain, scannedU := drainValues(t, pq, QueryOpts{NoPrune: true})
					if len(pruned) != len(plain) {
						t.Fatalf("%s: %q: pruned %d rows, unpruned %d", stage, src, len(pruned), len(plain))
					}
					for i := range pruned {
						if pruned[i] != plain[i] {
							t.Fatalf("%s: %q: row %d differs: %q vs %q", stage, src, i, pruned[i], plain[i])
						}
					}
					if scannedP > scannedU {
						t.Fatalf("%s: %q: pruned scan examined more tuples (%d > %d)", stage, src, scannedP, scannedU)
					}
				}
			}

			insert(400)
			check("fresh")

			// Decay-rot: tick past the TTL so early epochs rot away,
			// dropping and hollowing segments.
			for i := 0; i < 5; i++ {
				if _, err := db.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			insert(300)
			for i := 0; i < 5; i++ {
				if _, err := db.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			check("after rot")

			// Consume-on-query eviction: punch mid-segment holes.
			if _, err := tbl.SQL("SELECT CONSUME k FROM t WHERE k % 7 = 0"); err != nil {
				t.Fatal(err)
			}
			check("after consume")

			// Compaction: rewrite the hollowed segments (zone maps are
			// rebuilt over the survivors).
			tbl.Compact()
			check("after compact")

			insert(250)
			check("after regrowth")

			if st := tbl.StoreStats(); st.SegsPruned == 0 || st.TuplesSkipped == 0 {
				t.Errorf("no pruning happened at all (stats %+v) — test has lost its teeth", st)
			}
		})
	}
}

// TestOrderedTopKParity proves the per-shard top-k route returns
// byte-identical rows to the materialised sort-barrier path (same
// query without LIMIT, truncated by the reader), including DESC keys
// and ID tie-breaks, and that its peak retained row count stays
// O(shards × k) while streaming a top-10 over 100k rows.
func TestOrderedTopKParity(t *testing.T) {
	const n = 100_000
	const k = 10
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openDB(t)
			tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			rows := make([][]tuple.Value, 1000)
			seq := 0
			for filled := 0; filled < n; filled += len(rows) {
				for i := range rows {
					// Few distinct v values force heavy ties: the ID
					// tie-break must match the stable sort exactly.
					rows[i] = Row(seq, float64(seq%13), fmt.Sprintf("name-%d", seq%5))
					seq++
				}
				if _, err := tbl.InsertBatch(rows); err != nil {
					t.Fatal(err)
				}
			}

			for _, order := range []string{"v DESC, name ASC", "v ASC", "name DESC, v DESC"} {
				src := fmt.Sprintf("SELECT k, v, name FROM t ORDER BY %s", order)
				pqTopK, err := tbl.Prepare(src + fmt.Sprintf(" LIMIT %d", k))
				if err != nil {
					t.Fatal(err)
				}
				pqBarrier, err := tbl.Prepare(src)
				if err != nil {
					t.Fatal(err)
				}

				peak := -1
				topkPeakHook = func(retained int) { peak = retained }
				got, scanned := drainValues(t, pqTopK, QueryOpts{})
				topkPeakHook = nil

				want, _ := drainValues(t, pqBarrier, QueryOpts{})
				if len(want) > k {
					want = want[:k]
				}
				if len(got) != k {
					t.Fatalf("%q: %d rows, want %d", order, len(got), k)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%q: row %d: topk %q != barrier %q", order, i, got[i], want[i])
					}
				}
				if scanned != n {
					t.Errorf("%q: scanned %d, want %d (no WHERE, full scan)", order, scanned, n)
				}
				if peak < 0 {
					t.Fatalf("%q: top-k route was not taken", order)
				}
				if peak > shards*k {
					t.Errorf("%q: peak retained rows %d > shards×k = %d", order, peak, shards*k)
				}
			}

			// LIMIT larger than the matching set degrades gracefully.
			pq, err := tbl.Prepare("SELECT k FROM t WHERE k < 7 ORDER BY k DESC LIMIT 50")
			if err != nil {
				t.Fatal(err)
			}
			got, _ := drainValues(t, pq, QueryOpts{})
			if len(got) != 7 || got[0] != "6" || got[6] != "0" {
				t.Errorf("under-full top-k = %v", got)
			}
		})
	}
}

// TestOrderedTopKRouting pins which plans take the push-down: ordered
// LIMIT peeks do; consume, touch-on-read, distillation and
// programmatic caps keep the materialised barrier (they need the
// matching tuple set, not just the output rows).
func TestOrderedTopKRouting(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(Row(i, float64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	probe := func(src string, opt QueryOpts) bool {
		t.Helper()
		taken := false
		topkPeakHook = func(int) { taken = true }
		defer func() { topkPeakHook = nil }()
		pq, err := tbl.Prepare(src)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := pq.ExecuteOpts(opt)
		if err != nil {
			t.Fatal(err)
		}
		for rows.Next() {
		}
		if err := rows.Close(); err != nil {
			t.Fatal(err)
		}
		return taken
	}
	if !probe("SELECT k FROM t ORDER BY k DESC LIMIT 5", QueryOpts{}) {
		t.Error("ordered+limit peek skipped the push-down")
	}
	if probe("SELECT k FROM t ORDER BY k DESC", QueryOpts{}) {
		t.Error("unlimited ordered peek took the push-down")
	}
	if probe("SELECT k FROM t ORDER BY k DESC LIMIT 5", QueryOpts{Limit: 3}) {
		t.Error("programmatic cap took the push-down")
	}
	if probe("SELECT k FROM t ORDER BY k DESC LIMIT 5", QueryOpts{Distill: "d"}) {
		t.Error("distilling query took the push-down")
	}
	if probe("SELECT CONSUME k FROM t ORDER BY k DESC LIMIT 5", QueryOpts{}) {
		t.Error("consume took the push-down")
	}
}

// streamStopTable builds the 2-shard, 300k-row extent the cancellation
// tests share: k equals the global insertion ID, so shard 0 holds the
// even ks and shard 1 the odd ones.
func streamStopTable(t *testing.T) *Table {
	t.Helper()
	const n = 300_000
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([][]tuple.Value, 1000)
	seq := 0
	for filled := 0; filled < n; filled += len(rows) {
		for i := range rows {
			rows[i] = Row(seq, float64(seq), "x")
			seq++
		}
		if _, err := tbl.InsertBatch(rows); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

// TestStreamLimitEarlyStop verifies the plain-peek LIMIT satellite:
// once the k-way merge has emitted LIMIT rows, a producer still
// scanning a long matchless stretch is cancelled instead of walking to
// the end of its shard. Shard 0 supplies all 512 LIMIT rows (even ks
// below 1023, where its own match cap stops it); shard 1's 256 matches
// sit higher up, so its head batch arrives early but is never drained
// — its producer would scan its remaining ~148k tuples if the merge
// finishing did not cancel it. NoPrune isolates the cancellation from
// zone-map pruning, which would otherwise skip the tail wholesale.
func TestStreamLimitEarlyStop(t *testing.T) {
	tbl := streamStopTable(t)
	pq, err := tbl.Prepare(
		"SELECT k FROM t WHERE (k % 2 = 0 AND k < 1023) OR (k % 2 = 1 AND k BETWEEN 2001 AND 2511) LIMIT 512")
	if err != nil {
		t.Fatal(err)
	}
	got, scanned := drainValues(t, pq, QueryOpts{NoPrune: true})
	if len(got) != 512 {
		t.Fatalf("rows = %d, want 512", len(got))
	}
	if got[0] != "0" || got[511] != "1022" {
		t.Fatalf("unexpected rows %q..%q", got[0], got[511])
	}
	// Shard 0 stops itself at its 512th match (~1k tuples); shard 1
	// must be cancelled shortly after the merge finishes. Without
	// cancellation the total would exceed 150k.
	if scanned > 100_000 {
		t.Errorf("scanned %d tuples; producer was not cancelled when the merge hit LIMIT", scanned)
	}
}

// TestStreamCloseCancelsProducers: an early Close must cancel
// producers mid-scan (the v2 streaming handler relies on this to
// release shard read locks on client disconnect), even when no further
// sends would ever unblock them.
func TestStreamCloseCancelsProducers(t *testing.T) {
	tbl := streamStopTable(t)
	pq, err := tbl.Prepare("SELECT k FROM t WHERE k < 512")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := pq.ExecuteOpts(QueryOpts{NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatal(rows.Err())
	}
	if err := rows.Close(); err != nil {
		t.Fatal(err)
	}
	if scanned := rows.Scanned(); scanned > 100_000 {
		t.Errorf("scanned %d tuples after an immediate Close", scanned)
	}
}

// TestLimitPlaceholderEndToEnd runs `LIMIT ?` through the prepared
// path on both the streaming route and the ordered top-k route.
func TestLimitPlaceholderEndToEnd(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := tbl.Insert(Row(i, float64(i%10), "x")); err != nil {
			t.Fatal(err)
		}
	}
	pq, err := tbl.Prepare("SELECT k FROM t WHERE k >= ? LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	if pq.NumParams() != 2 {
		t.Fatalf("NumParams = %d", pq.NumParams())
	}
	got, _ := drainValues(t, pq, QueryOpts{}, tuple.Int(100), tuple.Int(5))
	if len(got) != 5 || got[0] != "100" {
		t.Errorf("stream route rows = %v", got)
	}
	// Rebinding the same plan with a different limit.
	got, _ = drainValues(t, pq, QueryOpts{}, tuple.Int(100), tuple.Int(50))
	if len(got) != 50 {
		t.Errorf("rebind limit 50 returned %d rows", len(got))
	}
	// Bind-time type errors surface from Execute.
	if _, err := pq.Execute(tuple.Int(100), tuple.Float(5)); err == nil ||
		!strings.Contains(err.Error(), "LIMIT wants INT") {
		t.Errorf("float limit: %v", err)
	}
	if _, err := pq.Execute(tuple.Int(100)); err == nil {
		t.Error("arity violation accepted")
	}

	// Ordered top-k with a bound k.
	pq, err = tbl.Prepare("SELECT k, v FROM t ORDER BY v DESC, k DESC LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	taken := false
	topkPeakHook = func(int) { taken = true }
	got, _ = drainValues(t, pq, QueryOpts{}, tuple.Int(3))
	topkPeakHook = nil
	if len(got) != 3 || got[0] != "199|9" {
		t.Errorf("topk rows = %v", got)
	}
	if !taken {
		t.Error("bound LIMIT ? did not reach the top-k route")
	}
	// LIMIT ? bound to 0 = unlimited.
	got, _ = drainValues(t, pq, QueryOpts{}, tuple.Int(0))
	if len(got) != 200 {
		t.Errorf("limit 0 rows = %d, want 200", len(got))
	}
}

// TestConsumePruned proves the consume cut composes with pruning: the
// removed set equals the unpruned predicate's matching set, and the
// conservation counters stay intact.
func TestConsumePruned(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema, Shards: 2, SegmentSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := tbl.Insert(Row(i, float64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	before := tbl.StoreStats()
	g, err := tbl.SQL("SELECT CONSUME k FROM t WHERE k >= 450")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 50 {
		t.Fatalf("consumed %d, want 50", len(g.Rows))
	}
	after := tbl.StoreStats()
	if after.SegsPruned == before.SegsPruned {
		t.Error("consume cut did not prune any segment")
	}
	if tbl.Len() != 450 {
		t.Errorf("live = %d, want 450", tbl.Len())
	}
	c := tbl.Counters()
	if c.Consumed != 50 || c.Inserted != 500 {
		t.Errorf("counters = %+v", c)
	}
	// Everything below 450 is still there and still queryable.
	g, err = tbl.SQL("SELECT COUNT(*) AS n FROM t WHERE k >= 400")
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows[0][0].AsInt() != 50 {
		t.Errorf("survivors above 400 = %v, want 50", g.Rows[0][0])
	}
}

// TestOrderedTopKHugeLimit: a LIMIT far beyond the matching set must
// not preallocate O(LIMIT) heap storage per shard (the bounded heaps
// grow with what they retain).
func TestOrderedTopKHugeLimit(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{Schema: pruneSchema, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row(i, float64(i), "x")); err != nil {
			t.Fatal(err)
		}
	}
	pq, err := tbl.Prepare("SELECT k FROM t ORDER BY k DESC LIMIT 100000000")
	if err != nil {
		t.Fatal(err)
	}
	got, _ := drainValues(t, pq, QueryOpts{})
	if len(got) != 50 || got[0] != "49" {
		t.Errorf("rows = %d (first %q), want all 50 descending", len(got), got[0])
	}
}
