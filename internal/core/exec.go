package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"fungusdb/internal/query"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
)

// This file is the one execution path of the engine's read side. Every
// query API — Table.Query/QueryPred, Table.SQL, the HTTP /v1/query and
// container ask handlers, and the streaming /v2/query — compiles (or
// fetches from the per-table plan cache) a query.Plan and hands it to
// execPlan, which routes it:
//
//	digest    ask plans: answer from the container digest, no scan
//	consume   all-shard atomic answer-and-discard cut, then finish
//	aggregate per-shard partial aggregators merged in shard order
//	stream    per-shard parallel scan k-way merged by ID, pull-based
//	material  barrier peek (ORDER BY / distill / touch-on-read):
//	          collect, then finish
//
// New capabilities land here once instead of once per front door.

// ErrNoContainer reports an ask against a container that does not
// exist (or has rotted away).
var ErrNoContainer = errors.New("core: no such container")

// streamBatchSize is the per-shard tuple batch handed over one channel
// hop on the streaming path. Combined with the 1-batch channel buffer
// it bounds in-flight memory at roughly 2*shards*streamBatchSize rows.
const streamBatchSize = 256

// abortCheckEvery is how many scanned tuples a streaming producer lets
// pass between polls of the done channel. Without it a producer whose
// remaining tuples never match (no sends, so no natural done check)
// would scan to the end of its shard even after the k-way merge has
// emitted LIMIT rows or the caller closed the stream.
const abortCheckEvery = 1024

// topkPeakHook, when set (tests only), receives the total rows
// retained across all per-shard top-k heaps just before the merge —
// the ordered route's peak result-set footprint, O(shards × LIMIT).
var topkPeakHook func(retained int)

// pruneFn adapts the plan's compiled segment-prune checks to the
// storage scan callback, nil when the plan (or the caller) prunes
// nothing. *storage.ZoneMap satisfies query.ZoneView structurally, so
// neither package imports the other.
func pruneFn(plan *query.Plan, opt QueryOpts) func(*storage.ZoneMap) bool {
	p := plan.Pruner()
	if p == nil || opt.NoPrune {
		return nil
	}
	return func(z *storage.ZoneMap) bool { return p.Skip(z) }
}

// batchMatcher returns a fresh per-shard batch evaluator when the plan
// and options allow the vectorized route, nil otherwise (the caller
// then matches tuple at a time). Matchers carry scratch bitmaps, so
// every shard goroutine needs its own.
func (t *Table) batchMatcher(plan *query.Plan, params []tuple.Value, opt QueryOpts) *query.BatchMatcher {
	if opt.NoVectorize {
		return nil
	}
	return plan.NewBatchMatcher(params)
}

// PreparedQuery is a statement compiled against one table: parse and
// validation already happened, so Execute only binds parameters and
// runs. A PreparedQuery is immutable and safe for concurrent use;
// reuse it for repeated queries to skip the compile entirely.
type PreparedQuery struct {
	t    *Table
	plan *query.Plan
}

// Prepare compiles a SELECT statement (see query.ParseSelect for the
// grammar; `?` placeholders bind positionally at Execute) against this
// table. Compilation results are cached per table keyed by source
// text, so preparing the same statement twice is a map hit.
func (t *Table) Prepare(src string) (*PreparedQuery, error) {
	if v := t.plans.get("s\x00" + src); v != nil {
		return &PreparedQuery{t: t, plan: v.(*query.Plan)}, nil
	}
	stmt, err := query.ParseStatement(src)
	if err != nil {
		return nil, err
	}
	return t.compileStatement(stmt)
}

// PrepareStatement compiles an already-parsed statement, for callers
// (the HTTP handlers) that parsed the source themselves to route it to
// a table — a plan-cache miss then compiles without re-parsing.
func (t *Table) PrepareStatement(stmt *query.Statement) (*PreparedQuery, error) {
	if v := t.plans.get("s\x00" + stmt.Source()); v != nil {
		return &PreparedQuery{t: t, plan: v.(*query.Plan)}, nil
	}
	return t.compileStatement(stmt)
}

// compileStatement is the cache-miss half of Prepare/PrepareStatement:
// route check, compile, cache.
func (t *Table) compileStatement(stmt *query.Statement) (*PreparedQuery, error) {
	if stmt.From() != t.name {
		return nil, fmt.Errorf("core: statement reads %q, table is %q", stmt.From(), t.name)
	}
	plan, err := stmt.Plan(t.cfg.Schema)
	if err != nil {
		return nil, err
	}
	t.plans.put("s\x00"+stmt.Source(), plan)
	return &PreparedQuery{t: t, plan: plan}, nil
}

// PrepareAsk compiles a knowledge-container question (see
// query.ParseAskStatement for the forms) against this table's schema.
// Column references and literal operands are validated and coerced at
// compile time; the container itself resolves at Execute, so one
// prepared ask can outlive container churn.
func (t *Table) PrepareAsk(container, question string) (*PreparedQuery, error) {
	key := "a\x00" + container + "\x00" + question
	if v := t.plans.get(key); v != nil {
		return &PreparedQuery{t: t, plan: v.(*query.Plan)}, nil
	}
	stmt, err := query.ParseAskStatement(container, question)
	if err != nil {
		return nil, err
	}
	plan, err := stmt.Plan(t.cfg.Schema)
	if err != nil {
		return nil, err
	}
	t.plans.put(key, plan)
	return &PreparedQuery{t: t, plan: plan}, nil
}

// cachedPredicate returns the compiled predicate for a WHERE source,
// consulting the table's LRU first.
func (t *Table) cachedPredicate(where string) (*query.Predicate, error) {
	key := "w\x00" + where
	if v := t.plans.get(key); v != nil {
		return v.(*query.Predicate), nil
	}
	pred, err := query.Compile(where, t.cfg.Schema)
	if err != nil {
		return nil, err
	}
	t.plans.put(key, pred)
	return pred, nil
}

// PlanCacheStats reports the table's compiled-statement cache counters.
func (t *Table) PlanCacheStats() (hits, misses uint64, size int) {
	return t.plans.stats()
}

// Cols returns the prepared statement's output column names (nil for
// raw tuple scans and before ask fan-out is known).
func (pq *PreparedQuery) Cols() []string { return pq.plan.Cols() }

// NumParams returns how many `?` placeholders Execute must bind.
func (pq *PreparedQuery) NumParams() int { return pq.plan.NumParams() }

// Mode returns the statement's read semantics.
func (pq *PreparedQuery) Mode() query.Mode { return pq.plan.Mode() }

// Execute binds params and runs the plan, streaming the answer as
// query.Rows. Plain peeks stream shard-parallel without materialising
// the answer set; consume, ORDER BY, aggregation and ask answers have
// a natural barrier and are memory-backed. Always Close the rows (or
// drain them): on the streaming path producer goroutines hold shard
// read locks until the stream ends, so abandoning a Rows mid-way — or
// mutating the table from the same goroutine before draining — would
// stall writers on those shards.
func (pq *PreparedQuery) Execute(params ...tuple.Value) (*query.Rows, error) {
	return pq.t.execPlan(pq.plan, params, QueryOpts{})
}

// ExecuteOpts is Execute with per-call engine options (distillation,
// programmatic answer-set cap).
func (pq *PreparedQuery) ExecuteOpts(opt QueryOpts, params ...tuple.Value) (*query.Rows, error) {
	return pq.t.execPlan(pq.plan, params, opt)
}

// execPlan is the single routing point described in the file comment.
func (t *Table) execPlan(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	if t.closed.Load() {
		return nil, t.errClosed()
	}
	// Replicas answer peeks only: consuming or distilling would mutate
	// state the leader never shipped, silently forking the replica.
	if t.cfg.ReadOnly && (plan.Consume() || opt.Distill != "") {
		return nil, t.errReadOnly()
	}
	if err := plan.BindCheck(params); err != nil {
		return nil, err
	}
	if plan.IsAsk() {
		return t.execAsk(plan, params)
	}
	// Fold the parameters into the plan as literals once, so the
	// per-tuple hot path below never resolves a placeholder (a
	// `LIMIT ?` value is type-checked and resolved here too).
	if plan.NumParams() > 0 {
		bound, err := plan.Bind(params)
		if err != nil {
			return nil, err
		}
		plan, params = bound, nil
	}
	switch {
	case plan.Consume():
		return t.execConsume(plan, params, opt)
	case plan.Aggregated() && opt.Distill == "" && !t.cfg.TouchOnRead && opt.Limit == 0:
		// The distributed aggregate path sees every match exactly once,
		// so it only applies when nothing needs the materialised tuple
		// set: no distillation, no touch-on-read, and no programmatic
		// answer-set cap (QueryOpts.Limit bounds the tuples aggregated,
		// unlike the SQL LIMIT, which caps output rows and is handled
		// by the aggregator itself).
		return t.execAggregate(plan, params, opt)
	case !plan.Aggregated() && !plan.Ordered() && opt.Distill == "" && !t.cfg.TouchOnRead:
		return t.execStream(plan, params, opt)
	case !plan.Aggregated() && plan.Ordered() && plan.Limit() > 0 &&
		opt.Distill == "" && !t.cfg.TouchOnRead && opt.Limit == 0:
		// Ordered + LIMIT without a reason to materialise: push the
		// sort into per-shard bounded top-k heaps and merge k-way, so
		// peak result memory is O(shards × LIMIT) instead of the whole
		// matching set behind a sort barrier.
		return t.execOrderedTopK(plan, params, opt)
	default:
		return t.execMaterial(plan, params, opt)
	}
}

// execAsk answers a knowledge-container question. Asking refreshes the
// container — consulted knowledge stays alive.
func (t *Table) execAsk(plan *query.Plan, params []tuple.Value) (*query.Rows, error) {
	name := plan.Ask().Container
	c := t.shelf.Get(name)
	if c == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoContainer, name)
	}
	c.Touch()
	return plan.AskRows(c.Digest, params)
}

// matchShard collects up to limit clones of the tuples in shard i
// matching the plan, skipping whole segments the plan's pruner rules
// out. The caller holds shard i's lock (read suffices).
//
//fungusvet:requires shardlock
func (t *Table) matchShard(i int, plan *query.Plan, params []tuple.Value, limit int, prune func(*storage.ZoneMap) bool, scanned *int) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	var matchErr error
	t.store.ScanShardPruned(i, prune, func(tp *tuple.Tuple) bool {
		*scanned++
		ok, err := plan.Match(tp, params)
		if err != nil {
			matchErr = err
			return false
		}
		if !ok {
			return true
		}
		out = append(out, tp.Clone())
		return limit == 0 || len(out) < limit
	})
	return out, matchErr
}

// matchShardBatch is matchShard on the vectorized route: the compiled
// WHERE program selects rows batch-wise over the columnar segment
// views, and tuples materialise only for matches. A kernel error only
// surfaces when the scan consumes every selected row before it — a
// limit hit stops first, exactly where the tuple path would have
// stopped evaluating. The caller holds shard i's lock.
//
//fungusvet:requires shardlock
func (t *Table) matchShardBatch(i int, bm *query.BatchMatcher, limit int, prune func(*storage.ZoneMap) bool, scanned *int) ([]tuple.Tuple, error) {
	var out []tuple.Tuple
	var matchErr error
	t.store.ScanShardBatches(i, prune, func(b *tuple.Batch) bool {
		*scanned += b.Alive
		sel, _, kerr := bm.Match(b)
		full := !tuple.EachSet(sel, func(j int) bool {
			out = append(out, b.Row(j))
			return limit == 0 || len(out) < limit
		})
		if full {
			return false
		}
		if kerr != nil {
			matchErr = kerr
			return false
		}
		return true
	})
	return out, matchErr
}

// execStream is the shard-parallel streaming peek: one producer per
// shard scans under that shard's read lock and hands matching tuples
// over a small bounded channel; the returned Rows k-way merges the
// batches back into global insertion order as the caller pulls. The
// fan-out deliberately runs one goroutine per shard rather than the
// worker-bounded pool — the merge needs every shard's head batch
// before it can emit anything, so capping concurrency below the shard
// count would deadlock; memory stays bounded by the channel buffers,
// and pacing comes from the consumer.
func (t *Table) execStream(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	n := t.store.NumShards()
	// The programmatic cap and the SQL LIMIT both bound a plain
	// unordered scan's output; the effective cap is the tighter one.
	limit := opt.Limit
	if sl := plan.Limit(); sl > 0 && (limit == 0 || sl < limit) {
		limit = sl
	}
	chans := make([]chan []tuple.Tuple, n)
	recv := make([]<-chan []tuple.Tuple, n)
	for i := range chans {
		chans[i] = make(chan []tuple.Tuple, 1)
		recv[i] = chans[i]
	}
	done := make(chan struct{})
	var scanned atomic.Int64
	prune := pruneFn(plan, opt)
	errCh := make(chan error, 1)
	go func() {
		errCh <- fanOut(n, n, func(i int) error {
			defer close(chans[i])
			t.shardMu[i].RLock()
			defer t.shardMu[i].RUnlock()
			batch := make([]tuple.Tuple, 0, streamBatchSize)
			matched := 0
			visited := 0
			aborted := false
			var innerErr error
			send := func(b []tuple.Tuple) bool {
				select {
				case chans[i] <- b:
					return true
				case <-done:
					aborted = true
					return false
				}
			}
			if bm := t.batchMatcher(plan, params, opt); bm != nil {
				// Vectorized producer: the WHERE program selects whole
				// column batches; matches clone in ascending row order,
				// filling the same 256-row hand-off batches at the same
				// boundaries as the tuple path. Cancellation polls per
				// storage batch (≤ BatchRows rows, ≤ abortCheckEvery).
				t.store.ScanShardBatches(i, prune, func(b *tuple.Batch) bool {
					scanned.Add(int64(b.Alive))
					select {
					case <-done:
						aborted = true
						return false
					default:
					}
					runtime.Gosched()
					sel, _, kerr := bm.Match(b)
					full := false
					tuple.EachSet(sel, func(j int) bool {
						batch = append(batch, b.Row(j))
						matched++
						if len(batch) == streamBatchSize {
							if !send(batch) {
								return false
							}
							batch = make([]tuple.Tuple, 0, streamBatchSize)
						}
						if limit != 0 && matched >= limit {
							full = true
							return false
						}
						return true
					})
					if aborted || full {
						return false
					}
					if kerr != nil {
						innerErr = kerr
						return false
					}
					return true
				})
				if innerErr != nil {
					return innerErr
				}
				if !aborted && len(batch) > 0 {
					send(batch)
				}
				return nil
			}
			t.store.ScanShardPruned(i, prune, func(tp *tuple.Tuple) bool {
				scanned.Add(1)
				// Poll for cancellation between sends: once the merge
				// has emitted LIMIT rows (or the caller closed the
				// stream), a shard mid-way through a matchless stretch
				// must stop instead of scanning to its end. The yield
				// keeps the consumer (who decides to cancel) runnable
				// even when producers saturate every P.
				if visited++; visited%abortCheckEvery == 0 {
					select {
					case <-done:
						aborted = true
						return false
					default:
					}
					runtime.Gosched()
				}
				ok, err := plan.Match(tp, params)
				if err != nil {
					innerErr = err
					return false
				}
				if !ok {
					return true
				}
				batch = append(batch, tp.Clone())
				matched++
				if len(batch) == streamBatchSize {
					if !send(batch) {
						return false
					}
					batch = make([]tuple.Tuple, 0, streamBatchSize)
				}
				// Each shard contributes at most limit rows to a
				// limit-capped merge, so stop scanning early.
				return limit == 0 || matched < limit
			})
			if innerErr != nil {
				return innerErr
			}
			if !aborted && len(batch) > 0 {
				send(batch)
			}
			return nil
		})
	}()

	var project func(*tuple.Tuple) ([]tuple.Value, error)
	if !plan.Raw() {
		project = func(tp *tuple.Tuple) ([]tuple.Value, error) { return plan.Project(tp, params) }
	}
	return query.NewStreamRows(query.Stream{
		Cols:    plan.Cols(),
		Mode:    plan.Mode(),
		Batches: recv,
		Done:    done,
		Wait: func() (int, error) {
			err := <-errCh
			// Count the query only once the scan ends cleanly, matching
			// the materialised paths: failed queries are not queries.
			if err == nil {
				t.mu.Lock()
				t.ctrs.Queries++
				t.mu.Unlock()
			}
			return int(scanned.Load()), err
		},
		Project: project,
		Limit:   limit,
	}), nil
}

// execAggregate evaluates an aggregate/GROUP BY peek without
// materialising matches: one partial aggregator per shard, fed during
// the parallel scan, merged in ascending shard order (deterministic
// for a fixed shard count).
func (t *Table) execAggregate(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	n := t.store.NumShards()
	base := plan.NewAggregator(params)
	aggs := make([]*query.Aggregator, n)
	scanned := make([]int, n)
	prune := pruneFn(plan, opt)
	err := fanOut(n, t.workers, func(i int) error {
		agg := base.Fork()
		t.shardMu[i].RLock()
		defer t.shardMu[i].RUnlock()
		var innerErr error
		if bm := t.batchMatcher(plan, params, opt); bm != nil {
			// Vectorized route: the WHERE program selects whole column
			// batches and eligible aggregates fold the selection without
			// materialising a single tuple. Statements FeedBatch cannot
			// fold (GROUP BY, computed aggregate arguments) decode just
			// the selected rows — the WHERE stays vectorized either way.
			canBatch := agg.CanFeedBatch()
			var scratch tuple.Tuple
			t.store.ScanShardBatches(i, prune, func(b *tuple.Batch) bool {
				scanned[i] += b.Alive
				sel, _, kerr := bm.Match(b)
				if canBatch {
					if err := agg.FeedBatch(b, sel); err != nil {
						innerErr = err
						return false
					}
				} else {
					tuple.EachSet(sel, func(j int) bool {
						b.ReadRow(j, &scratch)
						if err := agg.Feed(&scratch); err != nil {
							innerErr = err
							return false
						}
						return true
					})
					if innerErr != nil {
						return false
					}
				}
				if kerr != nil {
					innerErr = kerr
					return false
				}
				return true
			})
			aggs[i] = agg
			return innerErr
		}
		t.store.ScanShardPruned(i, prune, func(tp *tuple.Tuple) bool {
			scanned[i]++
			ok, err := plan.Match(tp, params)
			if err != nil {
				innerErr = err
				return false
			}
			if ok {
				if err := agg.Feed(tp); err != nil {
					innerErr = err
					return false
				}
			}
			return true
		})
		aggs[i] = agg
		return innerErr
	})
	if err != nil {
		return nil, err
	}
	for i := 1; i < n; i++ {
		if err := aggs[0].Merge(aggs[i]); err != nil {
			return nil, err
		}
	}
	t.mu.Lock()
	t.ctrs.Queries++
	t.mu.Unlock()
	g, err := aggs[0].Grid()
	if err != nil {
		return nil, err
	}
	total := 0
	for _, s := range scanned {
		total += s
	}
	return query.NewGridRows(g, query.Peek, total), nil
}

// execOrderedTopK answers an ordered, LIMIT-capped peek without a full
// sort barrier: each shard folds its matches into a bounded heap of
// k = LIMIT projected rows under that shard's read lock (with segment
// pruning), and the per-shard survivors merge k-way in (ORDER BY
// keys, ID) order — the exact total order the materialised path's
// stable sort produces. Peak result memory is O(shards × k) no matter
// how many tuples match.
func (t *Table) execOrderedTopK(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	n := t.store.NumShards()
	prune := pruneFn(plan, opt)
	axis, axisDesc, axisOK := plan.OrderAxis()
	tks := make([]*query.TopK, n)
	scanned := make([]int, n)
	err := fanOut(n, t.workers, func(i int) error {
		tk := plan.NewTopK()
		t.shardMu[i].RLock()
		defer t.shardMu[i].RUnlock()
		var innerErr error
		feed := func(tp *tuple.Tuple) bool {
			ok, err := plan.Match(tp, params)
			if err != nil {
				innerErr = err
				return false
			}
			if !ok {
				return true
			}
			row, err := plan.Project(tp, params)
			if err != nil {
				innerErr = err
				return false
			}
			tk.Add(row, tp.ID)
			return true
		}
		switch bm := t.batchMatcher(plan, params, opt); {
		case axisOK && !opt.NoPrune:
			// Zone-directed ordered scan: ORDER BY _t/_id walks the ID
			// axis in key order (segments and rows reversed for DESC),
			// so the heap fills with the best candidates first and the
			// per-segment _t/_id bounds rule out whole segments once it
			// is full. The top-k survivor set is insertion-order
			// independent (the heap orders totally, ties broken by ID),
			// so the changed visit order cannot change the answer.
			axisSkip := tk.AxisSkip(axis, axisDesc)
			skip := func(z *storage.ZoneMap) bool {
				if prune != nil && prune(z) {
					return true
				}
				return axisSkip(z)
			}
			t.store.ScanShardAxis(i, axisDesc, skip, func(tp *tuple.Tuple) bool {
				scanned[i]++
				return feed(tp)
			})
		case bm != nil:
			var scratch tuple.Tuple
			t.store.ScanShardBatches(i, prune, func(b *tuple.Batch) bool {
				scanned[i] += b.Alive
				sel, _, kerr := bm.Match(b)
				tuple.EachSet(sel, func(j int) bool {
					b.ReadRow(j, &scratch)
					row, err := plan.Project(&scratch, params)
					if err != nil {
						innerErr = err
						return false
					}
					tk.Add(row, scratch.ID)
					return true
				})
				if innerErr != nil {
					return false
				}
				if kerr != nil {
					innerErr = kerr
					return false
				}
				return true
			})
		default:
			t.store.ScanShardPruned(i, prune, func(tp *tuple.Tuple) bool {
				scanned[i]++
				return feed(tp)
			})
		}
		if innerErr != nil {
			return innerErr
		}
		if err := tk.Err(); err != nil {
			return err
		}
		tks[i] = tk
		return nil
	})
	if err != nil {
		return nil, err
	}
	if topkPeakHook != nil {
		retained := 0
		for _, tk := range tks {
			retained += tk.Len()
		}
		topkPeakHook(retained)
	}
	rows, err := plan.MergeTopK(tks)
	if err != nil {
		return nil, err
	}
	t.mu.Lock()
	t.ctrs.Queries++
	t.mu.Unlock()
	total := 0
	for _, s := range scanned {
		total += s
	}
	return query.NewValueRows(plan.Cols(), plan.Mode(), rows, total), nil
}

// execMaterial is the barrier peek: collect the matching set like the
// classical path (per-shard parallel scan merged by ID), apply
// touch-on-read and distillation over it, then run the finishing
// stages (projection, ORDER BY, LIMIT — or local aggregation when the
// distributed path was disqualified).
func (t *Table) execMaterial(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	n := t.store.NumShards()
	parts := make([][]tuple.Tuple, n)
	scanned := make([]int, n)
	prune := pruneFn(plan, opt)
	err := fanOut(n, t.workers, func(i int) error {
		t.shardMu[i].RLock()
		defer t.shardMu[i].RUnlock()
		var err error
		if bm := t.batchMatcher(plan, params, opt); bm != nil {
			parts[i], err = t.matchShardBatch(i, bm, opt.Limit, prune, &scanned[i])
		} else {
			parts[i], err = t.matchShard(i, plan, params, opt.Limit, prune, &scanned[i])
		}
		return err
	})
	if err != nil {
		return nil, err
	}
	tuples := mergeByID(parts, opt.Limit)
	totalScanned := 0
	for _, s := range scanned {
		totalScanned += s
	}

	if t.cfg.TouchOnRead && len(tuples) > 0 {
		t.touchAnswered(tuples)
	}

	t.mu.Lock()
	t.ctrs.Queries++
	t.mu.Unlock()

	if opt.Distill != "" && len(tuples) > 0 {
		t.mu.Lock()
		err := t.shelf.Absorb(opt.Distill, t.clk.Now(), t.cfg.ContainerHalfLife, tuples)
		t.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return t.finishRows(plan, params, tuples, totalScanned)
}

// execConsume is the second natural law behind the prepared API: one
// atomic answer-and-discard cut across all shards, then the finishing
// stages over the (already removed) answer set.
func (t *Table) execConsume(plan *query.Plan, params []tuple.Value, opt QueryOpts) (*query.Rows, error) {
	tuples, scanned, due, err := t.consumeCut(plan, params, opt)
	if err != nil {
		return nil, err
	}
	if due {
		// Checkpoint re-acquires every shard lock, so it runs after
		// consumeCut released them.
		if err := t.Checkpoint(); err != nil {
			return nil, err
		}
	}
	return t.finishRows(plan, params, tuples, scanned)
}

// finishRows turns a materialised matching set into Rows: raw plans
// yield the tuples themselves, statement plans run the finishing
// stages into a grid first.
func (t *Table) finishRows(plan *query.Plan, params []tuple.Value, tuples []tuple.Tuple, scanned int) (*query.Rows, error) {
	if plan.Raw() {
		return query.NewTupleRows(nil, plan.Mode(), tuples, nil, scanned), nil
	}
	g, err := plan.Finish(tuples, params)
	if err != nil {
		return nil, err
	}
	return query.NewGridRows(g, plan.Mode(), scanned), nil
}

// consumeCut is the all-shards critical section of a consume query:
// one atomic answer-and-discard cut across the whole extent. It
// reports whether a checkpoint fell due.
func (t *Table) consumeCut(plan *query.Plan, params []tuple.Value, opt QueryOpts) (tuples []tuple.Tuple, scannedTotal int, due bool, err error) {
	n := t.store.NumShards()
	t.lockAll()
	defer t.unlockAll()
	if t.closed.Load() {
		return nil, 0, false, t.errClosed()
	}

	parts := make([][]tuple.Tuple, n)
	scanned := make([]int, n)
	prune := pruneFn(plan, opt)
	err = fanOut(n, t.workers, func(i int) error {
		var err error
		if bm := t.batchMatcher(plan, params, opt); bm != nil {
			parts[i], err = t.matchShardBatch(i, bm, opt.Limit, prune, &scanned[i])
		} else {
			parts[i], err = t.matchShard(i, plan, params, opt.Limit, prune, &scanned[i])
		}
		return err
	})
	if err != nil {
		return nil, 0, false, err
	}
	tuples = mergeByID(parts, opt.Limit)
	for _, s := range scanned {
		scannedTotal += s
	}

	t.mu.Lock()
	t.ctrs.Queries++
	t.mu.Unlock()

	if opt.Distill != "" && len(tuples) > 0 {
		t.mu.Lock()
		err := t.shelf.Absorb(opt.Distill, t.clk.Now(), t.cfg.ContainerHalfLife, tuples)
		if err == nil {
			t.ctrs.DistilledQuery += uint64(len(tuples))
		}
		t.mu.Unlock()
		if err != nil {
			return nil, 0, false, err
		}
	}

	evictLogged := make([]int, n)
	for i := range tuples {
		id := tuples[i].ID
		s := t.store.ShardOf(id)
		if err := t.store.Shard(s).Evict(id); err != nil {
			return nil, 0, false, fmt.Errorf("core: consume evict: %w", err)
		}
		if egi, ok := t.fngs[s].(interface{ Forget(tuple.ID) }); ok {
			egi.Forget(id)
		}
		if t.log != nil {
			if err := t.log.AppendEvict(s, id); err != nil {
				return nil, 0, false, err
			}
			evictLogged[s]++
		}
	}
	for s, logged := range evictLogged {
		if logged == 0 {
			continue
		}
		if _, err := t.noteAppendLocked(s, logged); err != nil {
			return nil, 0, false, err
		}
	}
	t.mu.Lock()
	t.ctrs.Consumed += uint64(len(tuples))
	due = t.noteMutationLocked(1)
	t.mu.Unlock()
	return tuples, scannedTotal, due, nil
}
