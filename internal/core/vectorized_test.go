package core

import (
	"fmt"
	"strings"
	"testing"

	"fungusdb/internal/fungus"
	"fungusdb/internal/tuple"
)

var vecSchema = tuple.MustSchema(
	tuple.Column{Name: "k", Kind: tuple.KindInt},
	tuple.Column{Name: "v", Kind: tuple.KindFloat},
	tuple.Column{Name: "name", Kind: tuple.KindString},
	tuple.Column{Name: "hot", Kind: tuple.KindBool},
)

// drainAny runs a prepared query and returns the rendered rows or the
// first error, wherever it surfaces (bind, execute or stream) — error
// queries must fail identically on both execution paths, so the error
// is a result here, not a test failure.
func drainAny(pq *PreparedQuery, opt QueryOpts, params ...tuple.Value) ([]string, error) {
	rows, err := pq.ExecuteOpts(opt, params...)
	if err != nil {
		return nil, err
	}
	defer rows.Close()
	var out []string
	for rows.Next() {
		var sb strings.Builder
		for i, v := range rows.Values() {
			if i > 0 {
				sb.WriteByte('|')
			}
			sb.WriteString(v.String())
		}
		out = append(out, sb.String())
	}
	return out, rows.Err()
}

// TestVectorizedEquivalenceUnderChurn is the tentpole property test:
// with vectorization on (the default), every query — every kernel
// shape, every selectivity, every exec route — must return rows
// byte-identical to the tuple-at-a-time interpreter (NoVectorize), in
// the same order, and error queries must fail with the same message.
// Churn (decay rot, consume eviction, compaction, regrowth) reshapes
// the segments under the batches between rounds.
func TestVectorizedEquivalenceUnderChurn(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openDB(t)
			tbl, err := db.CreateTable("t", TableConfig{
				Schema:      vecSchema,
				Fungus:      fungus.TTL{Lifetime: 9},
				Shards:      shards,
				SegmentSize: 48,
			})
			if err != nil {
				t.Fatal(err)
			}
			seq := 0
			insert := func(n int) {
				rows := make([][]tuple.Value, n)
				for i := range rows {
					rows[i] = Row(seq, float64(seq%97), fmt.Sprintf("name-%d", seq%11), seq%3 == 0)
					seq++
				}
				if _, err := tbl.InsertBatch(rows); err != nil {
					t.Fatal(err)
				}
			}
			// One query per kernel shape, spanning selectivity ~0 to 1.
			queries := func() []string {
				hi := seq
				return []string{
					// Numeric col-vs-lit across selectivities.
					fmt.Sprintf("SELECT k, v, name, hot FROM t WHERE k >= 0"),   // sel 1.0
					fmt.Sprintf("SELECT k, v FROM t WHERE k >= %d", hi-hi/10-1), // sel ~0.1
					fmt.Sprintf("SELECT k FROM t WHERE k = %d", hi/2),           // sel ~0
					fmt.Sprintf("SELECT k FROM t WHERE v != %d.0", hi%97),       // float col
					fmt.Sprintf("SELECT k FROM t WHERE %d <= k", hi-hi/10-1),    // lit-first flip
					// Col-vs-col: numeric (INT vs FLOAT through float64
					// images), string via dictionaries, bool.
					"SELECT k FROM t WHERE v < k",
					"SELECT k FROM t WHERE name = name",
					"SELECT k FROM t WHERE hot = hot",
					// IN over numeric and string sets.
					fmt.Sprintf("SELECT k FROM t WHERE k IN (%d, %d, %d)", hi/4, hi/2, hi+9),
					"SELECT k FROM t WHERE name IN (\"name-1\", \"name-7\", \"nope\")",
					// LIKE (dictionary truth table).
					"SELECT k, name FROM t WHERE name LIKE \"name-1%\"",
					"SELECT k FROM t WHERE name LIKE \"%-3\"",
					// Bool shapes: bare column, NOT, col-vs-lit.
					"SELECT k FROM t WHERE hot",
					"SELECT k FROM t WHERE NOT hot",
					"SELECT k FROM t WHERE hot = TRUE",
					// AND / OR trees with short-circuit error masking.
					fmt.Sprintf("SELECT k FROM t WHERE k >= %d AND v > 50.0", hi/2),
					fmt.Sprintf("SELECT k FROM t WHERE k < %d OR name = \"name-3\"", hi/10),
					fmt.Sprintf("SELECT k FROM t WHERE NOT (k < %d)", hi-hi/10),
					// Unsupported shape (arithmetic left side) must fall
					// back to the interpreter and still agree.
					"SELECT k FROM t WHERE k % 7 = 0",
					// Aggregate route: whole-batch folds.
					"SELECT COUNT(*) AS n FROM t",
					fmt.Sprintf("SELECT COUNT(*) AS n, SUM(v) AS s, AVG(v) AS a FROM t WHERE k >= %d", hi/3),
					"SELECT MIN(v) AS lo, MAX(v) AS hi, SUM(k) AS s FROM t WHERE hot",
					// Ordered top-k route over batch matching.
					"SELECT k, v, name FROM t WHERE v >= 10.0 ORDER BY v DESC, name ASC LIMIT 7",
					// Streaming route with LIMIT mid-batch.
					fmt.Sprintf("SELECT k FROM t WHERE k >= %d LIMIT 13", hi/5),
				}
			}
			errQueries := []string{
				// Kind-mismatch errors fire per evaluated row on the
				// interpreted path; the kernels must report the same
				// message (and not report it when no row is selected).
				"SELECT k FROM t WHERE name > 5",
				"SELECT k FROM t WHERE hot > \"x\"",
				"SELECT k FROM t WHERE k LIKE \"x%\"",
				"SELECT k FROM t WHERE name LIKE 5",
				"SELECT k FROM t WHERE k < 3 OR name > 5",
				"SELECT SUM(name) AS s FROM t",
				"SELECT MIN(hot) AS m FROM t WHERE k < 0 OR name > 5",
			}
			check := func(stage string) {
				t.Helper()
				for _, src := range queries() {
					pq, err := tbl.Prepare(src)
					if err != nil {
						t.Fatalf("%s: %q: %v", stage, src, err)
					}
					vec, verr := drainAny(pq, QueryOpts{})
					plain, perr := drainAny(pq, QueryOpts{NoVectorize: true})
					if verr != nil || perr != nil {
						t.Fatalf("%s: %q: vec err %v, interpreted err %v", stage, src, verr, perr)
					}
					if len(vec) != len(plain) {
						t.Fatalf("%s: %q: vectorized %d rows, interpreted %d", stage, src, len(vec), len(plain))
					}
					for i := range vec {
						if vec[i] != plain[i] {
							t.Fatalf("%s: %q: row %d differs: %q vs %q", stage, src, i, vec[i], plain[i])
						}
					}
				}
				for _, src := range errQueries {
					pq, err := tbl.Prepare(src)
					if err != nil {
						t.Fatalf("%s: %q: prepare: %v", stage, src, err)
					}
					_, verr := drainAny(pq, QueryOpts{})
					_, perr := drainAny(pq, QueryOpts{NoVectorize: true})
					if (verr == nil) != (perr == nil) {
						t.Fatalf("%s: %q: vec err %v, interpreted err %v", stage, src, verr, perr)
					}
					if verr != nil && verr.Error() != perr.Error() {
						t.Fatalf("%s: %q: error text differs:\n  vectorized:  %v\n  interpreted: %v",
							stage, src, verr, perr)
					}
				}
			}

			insert(400)
			check("fresh")

			// Decay rot: hollow and drop early segments.
			for i := 0; i < 5; i++ {
				if _, err := db.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			insert(300)
			for i := 0; i < 5; i++ {
				if _, err := db.Tick(); err != nil {
					t.Fatal(err)
				}
			}
			check("after rot")

			// Consume eviction: mid-segment holes in the liveness bitmap.
			if _, err := tbl.SQL("SELECT CONSUME k FROM t WHERE k % 7 = 0"); err != nil {
				t.Fatal(err)
			}
			check("after consume")

			// Compaction rewrites the column slices (fresh segment tags:
			// stale dictionary truth tables must not survive).
			tbl.Compact()
			check("after compact")

			insert(250)
			check("after regrowth")

			if st := tbl.StoreStats(); st.RowsVectorized == 0 || st.BatchesScanned == 0 {
				t.Errorf("batch route never ran (stats %+v) — test has lost its teeth", st)
			}
		})
	}
}

// TestVectorizedWriteThrough proves mutation contracts survive the
// batch route: TouchOnRead refreshes decay through batch-scanned
// tuples, and CONSUME removes exactly the batch-matched set.
func TestVectorizedWriteThrough(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("t", TableConfig{
		Schema: vecSchema, Shards: 2, SegmentSize: 32,
		Fungus:      fungus.AccessRefresh{Inner: fungus.Linear{Rate: 0.4}},
		TouchOnRead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, err := tbl.Insert(Row(i, float64(i), "x", false)); err != nil {
			t.Fatal(err)
		}
	}
	// Let freshness decay to 0.2, touch half the extent back to full,
	// then tick once more: only the touched half survives the rot.
	for i := 0; i < 2; i++ {
		if _, err := db.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.SQL("SELECT k FROM t WHERE k < 100"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Len(); got != 100 {
		t.Fatalf("after touch+rot: live = %d, want 100", got)
	}
	g, err := tbl.SQL("SELECT CONSUME k FROM t WHERE k < 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 50 || tbl.Len() != 50 {
		t.Fatalf("consume removed %d rows, live %d; want 50/50", len(g.Rows), tbl.Len())
	}
}

// TestAxisOrderedScanPrunes pins the zone-directed ordered scan: an
// ORDER BY _t (or _id) LIMIT k peek visits segments in key order and
// stops examining segments once the per-segment bounds cannot beat the
// worst retained row — a small top-k over a large extent must not read
// the whole table, yet return exactly what the materialised sort does.
func TestAxisOrderedScanPrunes(t *testing.T) {
	const n = 50_000
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db := openDB(t)
			tbl, err := db.CreateTable("t", TableConfig{Schema: vecSchema, Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			rows := make([][]tuple.Value, 1000)
			seq := 0
			for filled := 0; filled < n; filled += len(rows) {
				for i := range rows {
					rows[i] = Row(seq, float64(seq%13), fmt.Sprintf("name-%d", seq%5), seq%2 == 0)
					seq++
				}
				if _, err := tbl.InsertBatch(rows); err != nil {
					t.Fatal(err)
				}
				// Advance the clock so _t actually varies across segments.
				if filled%10_000 == 9_000 {
					if _, err := db.Tick(); err != nil {
						t.Fatal(err)
					}
				}
			}
			// The filtered query checks parity only: a shard whose rows
			// never match cannot fill its heap, so it legitimately scans
			// to the end (the axis bound needs k retained rows to bite).
			for _, tc := range []struct {
				src     string
				wantCut bool
			}{
				{"SELECT k, _id FROM t ORDER BY _id DESC LIMIT 10", true},
				{"SELECT k, _id FROM t ORDER BY _id ASC LIMIT 10", true},
				{"SELECT k, _t, _id FROM t ORDER BY _t DESC, _id DESC LIMIT 10", true},
				{"SELECT k, _id FROM t WHERE hot ORDER BY _id DESC LIMIT 10", false},
			} {
				src := tc.src
				pq, err := tbl.Prepare(src)
				if err != nil {
					t.Fatalf("%q: %v", src, err)
				}
				got, scanned := drainValues(t, pq, QueryOpts{})
				want, _ := drainValues(t, pq, QueryOpts{NoPrune: true, NoVectorize: true})
				if len(got) != len(want) {
					t.Fatalf("%q: %d rows, want %d", src, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("%q: row %d: axis %q != barrier %q", src, i, got[i], want[i])
					}
				}
				if tc.wantCut && scanned >= n/2 {
					t.Errorf("%q: examined %d of %d tuples; segment bounds did not cut the scan", src, scanned, n)
				}
			}
		})
	}
}
