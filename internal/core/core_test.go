package core

import (
	"strings"
	"sync"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/tuple"
)

var iotSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "temp", Kind: tuple.KindFloat},
)

func openDB(t *testing.T) *DB {
	t.Helper()
	db, err := Open(DBConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestCreateAndLookupTables(t *testing.T) {
	db := openDB(t)
	if _, err := db.CreateTable("a", TableConfig{Schema: iotSchema}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("b", TableConfig{Schema: iotSchema}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable("a", TableConfig{Schema: iotSchema}); err == nil {
		t.Error("duplicate table accepted")
	}
	if _, err := db.CreateTable("", TableConfig{Schema: iotSchema}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := db.CreateTable("c", TableConfig{}); err == nil {
		t.Error("nil schema accepted")
	}
	if got := db.Tables(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Tables = %v", got)
	}
	if _, err := db.Table("a"); err != nil {
		t.Error(err)
	}
	if _, err := db.Table("nope"); err == nil {
		t.Error("missing table lookup succeeded")
	}
	if err := db.DropTable("a"); err != nil {
		t.Error(err)
	}
	if err := db.DropTable("a"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestInsertAndPeekQuery(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(Row("sensor-1", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := tbl.Query("temp >= 5", query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 || res.Scanned != 10 {
		t.Errorf("len=%d scanned=%d", res.Len(), res.Scanned)
	}
	if tbl.Len() != 10 {
		t.Error("peek changed the extent")
	}
	// Same query again: identical answer (no consumption).
	res2, _ := tbl.Query("temp >= 5", query.Peek)
	if res2.Len() != 5 {
		t.Errorf("second peek len=%d", res2.Len())
	}
}

func TestConsumeQueryReducesExtent(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	for i := 0; i < 10; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	res, err := tbl.Query("temp < 4", query.Consume)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("consumed %d, want 4", res.Len())
	}
	// Law 2: extent = old extent minus answer set.
	if tbl.Len() != 6 {
		t.Errorf("Len = %d, want 6", tbl.Len())
	}
	// Re-running the same query returns nothing: answers are disjoint.
	res2, _ := tbl.Query("temp < 4", query.Consume)
	if res2.Len() != 0 {
		t.Errorf("second consume returned %d tuples", res2.Len())
	}
	c := tbl.Counters()
	if c.Consumed != 4 || c.Queries != 2 {
		t.Errorf("counters = %+v", c)
	}
}

func TestQueryLimit(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	for i := 0; i < 10; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	res, err := tbl.Query("", query.Consume, QueryOpts{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("limited answer = %d", res.Len())
	}
	if tbl.Len() != 7 {
		t.Errorf("extent = %d, want 7 (only answered tuples leave)", tbl.Len())
	}
}

func TestQueryErrors(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	tbl.Insert(Row("s", 1.0))
	if _, err := tbl.Query("nosuch > 1", query.Peek); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := tbl.Query("device > 1", query.Peek); err == nil {
		t.Error("type-mismatched query did not fail")
	}
	if tbl.Counters().Queries != 0 {
		t.Error("failed queries counted")
	}
}

func TestQueryDistillIntoContainer(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	for i := 0; i < 100; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	res, err := tbl.Query("temp < 50", query.Consume, QueryOpts{Distill: "cold"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 50 {
		t.Fatalf("consumed %d", res.Len())
	}
	c := tbl.Shelf().Get("cold")
	if c == nil {
		t.Fatal("container not created")
	}
	if c.Digest.Count() != 50 {
		t.Errorf("container absorbed %d", c.Digest.Count())
	}
	mean, err := c.Digest.Mean("temp")
	if err != nil {
		t.Fatal(err)
	}
	if mean != 24.5 {
		t.Errorf("container mean = %v", mean)
	}
	if tbl.Counters().DistilledQuery != 50 {
		t.Errorf("DistilledQuery = %d", tbl.Counters().DistilledQuery)
	}
}

func TestTickRotsAndDistills(t *testing.T) {
	db := openDB(t)
	tbl, err := db.CreateTable("iot", TableConfig{
		Schema:       iotSchema,
		Fungus:       fungus.Linear{Rate: 0.5},
		DistillOnRot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	rep, err := db.Tick() // freshness 0.5
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRot != 0 {
		t.Fatalf("rotted after one tick: %+v", rep)
	}
	rep, err = db.Tick() // freshness 0 -> all rot
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalRot != 8 || rep.TotalLive != 0 {
		t.Fatalf("tick 2 report: %+v", rep)
	}
	if tbl.Len() != 0 {
		t.Error("extent not empty after full rot")
	}
	rot := tbl.Shelf().Get(RotContainer)
	if rot == nil || rot.Digest.Count() != 8 {
		t.Fatalf("rot container = %+v", rot)
	}
	c := tbl.Counters()
	if c.Rotted != 8 || c.DistilledRot != 8 || c.CaptureRate() != 1 {
		t.Errorf("counters = %+v", c)
	}
}

func TestTickWithoutDistillLosesKnowledge(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{
		Schema: iotSchema,
		Fungus: fungus.Linear{Rate: 1.0},
	})
	for i := 0; i < 5; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	db.Tick()
	c := tbl.Counters()
	if c.Rotted != 5 || c.CaptureRate() != 0 {
		t.Errorf("counters = %+v", c)
	}
	if tbl.Shelf().Len() != 0 {
		t.Error("container created without DistillOnRot")
	}
}

func TestDBTickAdvancesClockAndInsertionTicks(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	tp0, _ := tbl.Insert(Row("s", 0.0))
	db.Tick()
	db.Tick()
	tp1, _ := tbl.Insert(Row("s", 1.0))
	if tp0.T != 0 || tp1.T != 2 {
		t.Errorf("ticks: %v, %v", tp0.T, tp1.T)
	}
	if db.Now() != 2 {
		t.Errorf("Now = %v", db.Now())
	}
}

func TestEGIEndToEndWithConsumeForget(t *testing.T) {
	db := openDB(t)
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 2, DecayRate: 0.2})
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema, Fungus: egi})
	for i := 0; i < 500; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if egi.InfectedCount() == 0 {
		t.Error("EGI infected nothing")
	}
	// Consume everything; the infection set must drain (Forget) so the
	// fungus does not reference ghosts.
	if _, err := tbl.Query("", query.Consume); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 0 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if egi.InfectedCount() != 0 {
		t.Errorf("EGI still tracks %d consumed tuples", egi.InfectedCount())
	}
	if _, err := db.Tick(); err != nil {
		t.Fatal(err)
	}
}

func TestTouchOnReadKeepsDataAlive(t *testing.T) {
	db := openDB(t)
	inner := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 1, DecayRate: 0.4})
	tbl, _ := db.CreateTable("iot", TableConfig{
		Schema:      iotSchema,
		Fungus:      fungus.AccessRefresh{Inner: inner},
		TouchOnRead: true,
	})
	for i := 0; i < 50; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	// Tend the data: peek everything after every tick.
	for i := 0; i < 30; i++ {
		db.Tick()
		if _, err := tbl.Query("", query.Peek); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 50 {
		t.Errorf("tended extent shrank to %d", tbl.Len())
	}
	p := tbl.Profile()
	if p.Mean != 1 {
		t.Errorf("tended extent mean freshness = %v", p.Mean)
	}
}

func TestContainerShelfDecaysWithTicks(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{
		Schema:            iotSchema,
		ContainerHalfLife: 3,
	})
	tbl.Insert(Row("s", 1.0))
	if _, err := tbl.Query("", query.Consume, QueryOpts{Distill: "short-lived"}); err != nil {
		t.Fatal(err)
	}
	if tbl.Shelf().Len() != 1 {
		t.Fatal("container missing")
	}
	discarded := false
	for i := 0; i < 100 && !discarded; i++ {
		rep, err := tbl.Tick()
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range rep.ContainersDiscarded {
			if name == "short-lived" {
				discarded = true
			}
		}
	}
	if !discarded {
		t.Error("container never rotted off the shelf")
	}
}

func TestTickEveryPerTablePeriod(t *testing.T) {
	db := openDB(t)
	fast, _ := db.CreateTable("fast", TableConfig{
		Schema: iotSchema,
		Fungus: fungus.Linear{Rate: 0.1},
	})
	slow, _ := db.CreateTable("slow", TableConfig{
		Schema:    iotSchema,
		Fungus:    fungus.Linear{Rate: 0.1},
		TickEvery: 3, // the paper's per-relation clock period T
	})
	fast.Insert(Row("s", 1.0))
	slow.Insert(Row("s", 1.0))
	for i := 0; i < 6; i++ {
		if _, err := db.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	fp, sp := fast.Profile(), slow.Profile()
	if fp.Mean >= 0.45 || fp.Mean <= 0.35 { // 6 decay steps
		t.Errorf("fast mean = %v, want 0.4", fp.Mean)
	}
	if sp.Mean >= 0.85 || sp.Mean <= 0.75 { // 2 decay steps (ticks 3 and 6)
		t.Errorf("slow mean = %v, want 0.8", sp.Mean)
	}
}

func TestRowConversion(t *testing.T) {
	vals := Row(1, int64(2), 3.5, "x", true, tuple.Int(9))
	wantKinds := []tuple.Kind{tuple.KindInt, tuple.KindInt, tuple.KindFloat, tuple.KindString, tuple.KindBool, tuple.KindInt}
	for i, k := range wantKinds {
		if vals[i].Kind() != k {
			t.Errorf("Row[%d] kind = %v, want %v", i, vals[i].Kind(), k)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Row with unsupported type did not panic")
		}
	}()
	Row(struct{}{})
}

func TestClosedTableRejectsOps(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	tbl.Close()
	if _, err := tbl.Insert(Row("s", 1.0)); err == nil {
		t.Error("insert on closed table succeeded")
	}
	if _, err := tbl.Query("", query.Peek); err == nil {
		t.Error("query on closed table succeeded")
	}
	if _, err := tbl.Tick(); err == nil {
		t.Error("tick on closed table succeeded")
	}
	if err := tbl.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestClosedDBRejectsCreate(t *testing.T) {
	db, _ := Open(DBConfig{})
	db.Close()
	if _, err := db.CreateTable("x", TableConfig{Schema: iotSchema}); err == nil {
		t.Error("create on closed DB succeeded")
	}
	if err := db.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestConcurrentInsertsAndQueries(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{
		Schema: iotSchema,
		Fungus: fungus.Linear{Rate: 0.001},
	})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := tbl.Insert(Row("s", float64(i))); err != nil {
					t.Errorf("insert: %v", err)
					return
				}
				if i%10 == 0 {
					if _, err := tbl.Query("temp < 100", query.Peek); err != nil {
						t.Errorf("query: %v", err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := db.Tick(); err != nil {
				t.Errorf("tick: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if tbl.Len() != 800 {
		t.Errorf("Len = %d, want 800 (rate too small to rot)", tbl.Len())
	}
}

func TestPersistentTableSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db1, err := Open(DBConfig{Seed: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db1.CreateTable("iot", TableConfig{
		Schema:  iotSchema,
		Fungus:  fungus.Linear{Rate: 0.1},
		Persist: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	db1.Tick()
	db1.Tick() // freshness now 0.8
	if _, err := tbl.Query("temp < 5", query.Consume); err != nil {
		t.Fatal(err)
	}
	wantLen := tbl.Len()
	if err := db1.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen at the same logical time.
	db2, err := Open(DBConfig{Seed: 2, Dir: dir, Clock: clock.NewVirtual(2)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.CreateTable("iot", TableConfig{
		Schema:  iotSchema,
		Fungus:  fungus.Linear{Rate: 0.1},
		Persist: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != wantLen {
		t.Fatalf("recovered %d tuples, want %d", tbl2.Len(), wantLen)
	}
	// Freshness survived the checkpoint.
	res, err := tbl2.Query("_f < 0.81 AND _f > 0.79", query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != wantLen {
		t.Errorf("freshness lost on recovery: %d of %d tuples at 0.8", res.Len(), wantLen)
	}
	// The consumed tuples stayed consumed.
	res, _ = tbl2.Query("temp < 5", query.Peek)
	if res.Len() != 0 {
		t.Errorf("consumed tuples resurrected: %d", res.Len())
	}
}

func TestPersistenceRequiresDir(t *testing.T) {
	db := openDB(t) // no Dir
	if _, err := db.CreateTable("p", TableConfig{Schema: iotSchema, Persist: true}); err == nil {
		t.Error("persistent table without Dir accepted")
	}
}

func TestCheckpointEveryTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("iot", TableConfig{
		Schema:          iotSchema,
		Persist:         true,
		CheckpointEvery: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	if err := tbl.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Close(); err != nil {
		t.Fatal(err)
	}
	// Everything must still be recoverable.
	db2, _ := Open(DBConfig{Dir: dir})
	defer db2.Close()
	tbl2, err := db2.CreateTable("iot", TableConfig{Schema: iotSchema, Persist: true})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 25 {
		t.Errorf("recovered %d, want 25", tbl2.Len())
	}
}

func TestCheckpointOnNonPersistentTable(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	if err := tbl.Checkpoint(); err == nil {
		t.Error("checkpoint on in-memory table succeeded")
	}
}

func TestTimeSeriesThroughTable(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	for i := 0; i < 40; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	buckets := tbl.TimeSeries(4)
	if len(buckets) != 4 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	total := 0
	for _, b := range buckets {
		total += b.Live
	}
	if total != 40 {
		t.Errorf("bucket live total = %d", total)
	}
}

func TestCompileReuse(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("iot", TableConfig{Schema: iotSchema})
	pred, err := tbl.Compile("temp > 5")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tbl.Insert(Row("s", float64(i)))
	}
	res, err := tbl.QueryPred(pred, query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Errorf("len = %d", res.Len())
	}
	if !strings.Contains(pred.Source(), "temp") {
		t.Error("source lost")
	}
}
