package core

import (
	"testing"

	"fungusdb/internal/catalog"
	"fungusdb/internal/clock"
	"fungusdb/internal/query"
)

func TestSpecTableFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Seed: 3, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	spec := catalog.TableSpec{
		Name:         "logs",
		Schema:       "host STRING, sev INT",
		Fungus:       &catalog.FungusSpec{Kind: "ttl", Lifetime: 100},
		DistillOnRot: true,
	}
	tbl, err := db.CreateTableFromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := tbl.Insert(Row("web-1", i%8)); err != nil {
			t.Fatal(err)
		}
	}
	db.Tick()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the table comes back without any caller configuration.
	db2, err := Open(DBConfig{Seed: 3, Dir: dir, Clock: clock.NewVirtual(1)})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Tables(); len(got) != 1 || got[0] != "logs" {
		t.Fatalf("recreated tables = %v", got)
	}
	tbl2, err := db2.Table("logs")
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Len() != 10 {
		t.Errorf("recovered %d tuples", tbl2.Len())
	}
	// The fungus came back too: after the TTL lifetime everything rots
	// and (DistillOnRot) lands in the rot container.
	for i := 0; i < 101; i++ {
		if _, err := db2.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if tbl2.Len() != 0 {
		t.Errorf("TTL did not survive reopen: %d live", tbl2.Len())
	}
	rot := tbl2.Shelf().Get(RotContainer)
	if rot == nil || rot.Digest.Count() != 10 {
		t.Errorf("DistillOnRot lost on reopen: %+v", rot)
	}
}

func TestSpecTableRequiresDir(t *testing.T) {
	db := openDB(t)
	_, err := db.CreateTableFromSpec(catalog.TableSpec{Name: "x", Schema: "a INT"})
	if err == nil {
		t.Error("spec table without Dir accepted")
	}
}

func TestSpecTableInvalidSpec(t *testing.T) {
	db, err := Open(DBConfig{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.CreateTableFromSpec(catalog.TableSpec{Name: "x", Schema: "nope"}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestDropTableRemovesCatalogEntry(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTableFromSpec(catalog.TableSpec{Name: "gone", Schema: "a INT"}); err != nil {
		t.Fatal(err)
	}
	if err := db.DropTable("gone"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(DBConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.Tables(); len(got) != 0 {
		t.Errorf("dropped table resurrected: %v", got)
	}
}

func TestSpecTargetedFungusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(DBConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	spec := catalog.TableSpec{
		Name:   "logs",
		Schema: "host STRING, sev INT",
		Fungus: &catalog.FungusSpec{
			Kind:  "targeted",
			Where: "sev >= 6",
			Inner: &catalog.FungusSpec{Kind: "linear", Rate: 1.0},
		},
	}
	if _, err := db.CreateTableFromSpec(spec); err != nil {
		t.Fatal(err)
	}
	db.Close()

	db2, err := Open(DBConfig{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl, _ := db2.Table("logs")
	tbl.Insert(Row("a", 7)) // chatty: rots next tick
	tbl.Insert(Row("a", 1)) // serious: shielded
	db2.Tick()
	res, err := tbl.Query("", query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Tuples[0].Attrs[1].AsInt() != 1 {
		t.Errorf("targeted fungus wrong after reopen: %v", res.Tuples)
	}
}
