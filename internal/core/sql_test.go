package core

import (
	"fmt"
	"testing"

	"fungusdb/internal/fungus"
)

func loadClicks(t *testing.T) *Table {
	t.Helper()
	db := openDB(t)
	tbl, err := db.CreateTable("clicks", TableConfig{Schema: iotSchema})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		if _, err := tbl.Insert(Row(fmt.Sprintf("sensor-%d", i%3), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSQLSelectWhereOrderLimit(t *testing.T) {
	tbl := loadClicks(t)
	g, err := tbl.SQL("SELECT device, temp FROM clicks WHERE temp >= 50 ORDER BY temp DESC LIMIT 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if g.Rows[0][1].AsFloat() != 59 || g.Rows[2][1].AsFloat() != 57 {
		t.Errorf("rows = %v", g.Rows)
	}
	if tbl.Len() != 60 {
		t.Error("plain SELECT consumed")
	}
}

func TestSQLGroupBy(t *testing.T) {
	tbl := loadClicks(t)
	g, err := tbl.SQL("SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM clicks GROUP BY device")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	for _, row := range g.Rows {
		if row[1].AsInt() != 20 {
			t.Errorf("group %v count = %v", row[0], row[1])
		}
	}
}

func TestSQLConsumeRemovesMatches(t *testing.T) {
	tbl := loadClicks(t)
	g, err := tbl.SQL("SELECT CONSUME device FROM clicks WHERE temp < 30 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	// LIMIT truncates the grid, not the consumption: QueryPred consumed
	// only what it answered... Limit is applied post-scan in Execute,
	// while QueryOpts.Limit was not set, so all 30 matches left.
	if len(g.Rows) != 5 {
		t.Errorf("grid rows = %d", len(g.Rows))
	}
	if tbl.Len() != 30 {
		t.Errorf("extent = %d, want 30 (all matches consumed)", tbl.Len())
	}
	if tbl.Counters().Consumed != 30 {
		t.Errorf("consumed = %d", tbl.Counters().Consumed)
	}
}

func TestSQLConsumeWithDistill(t *testing.T) {
	tbl := loadClicks(t)
	if _, err := tbl.SQL("SELECT CONSUME * FROM clicks WHERE temp >= 40", QueryOpts{Distill: "hot"}); err != nil {
		t.Fatal(err)
	}
	c := tbl.Shelf().Get("hot")
	if c == nil || c.Digest.Count() != 20 {
		t.Fatalf("container = %+v", c)
	}
}

func TestSQLWrongTable(t *testing.T) {
	tbl := loadClicks(t)
	if _, err := tbl.SQL("SELECT * FROM other"); err == nil {
		t.Error("wrong table accepted")
	}
}

func TestSQLParseAndExecErrors(t *testing.T) {
	tbl := loadClicks(t)
	for _, src := range []string{
		"DELETE FROM clicks",
		"SELECT nosuch FROM clicks",
		"SELECT * FROM clicks WHERE nosuch = 1",
		"SELECT device FROM clicks GROUP BY nosuch",
	} {
		if _, err := tbl.SQL(src); err == nil {
			t.Errorf("%q accepted", src)
		}
	}
}

func TestSQLSystemColumns(t *testing.T) {
	db := openDB(t)
	tbl, _ := db.CreateTable("clicks", TableConfig{
		Schema: iotSchema,
		Fungus: fungus.Linear{Rate: 0.1},
	})
	tbl.Insert(Row("s", 1.0))
	db.Tick()
	db.Tick()
	tbl.Insert(Row("s", 2.0))
	g, err := tbl.SQL("SELECT device, _f, _t FROM clicks ORDER BY _t")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 2 {
		t.Fatalf("rows = %d", len(g.Rows))
	}
	if g.Rows[0][1].AsFloat() != 0.8 || g.Rows[1][1].AsFloat() != 1.0 {
		t.Errorf("freshness column = %v / %v", g.Rows[0][1], g.Rows[1][1])
	}
	if g.Rows[0][2].AsInt() != 0 || g.Rows[1][2].AsInt() != 2 {
		t.Errorf("tick column = %v / %v", g.Rows[0][2], g.Rows[1][2])
	}
}

func TestSQLFreshnessWeightedAnalytics(t *testing.T) {
	// The headline combination: aggregate freshness per group — the
	// kind of health dashboard the paper imagines.
	db := openDB(t)
	tbl, _ := db.CreateTable("clicks", TableConfig{
		Schema: iotSchema,
		Fungus: fungus.Linear{Rate: 0.05},
	})
	for i := 0; i < 30; i++ {
		tbl.Insert(Row(fmt.Sprintf("sensor-%d", i%3), float64(i)))
		if i%10 == 9 {
			db.Tick()
		}
	}
	g, err := tbl.SQL("SELECT device, COUNT(*) AS n, AVG(_f) AS avg_fresh FROM clicks GROUP BY device ORDER BY device")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 3 {
		t.Fatalf("groups = %d", len(g.Rows))
	}
	for _, row := range g.Rows {
		f := row[2].AsFloat()
		if f <= 0.8 || f > 1.0 {
			t.Errorf("avg freshness %v out of expected band", f)
		}
	}
}
