package core

import (
	"math/rand"
	"sync"

	"fungusdb/internal/fanout"
)

// fanOut runs fn(0..n-1) over a bounded pool of at most `workers`
// goroutines and waits for all of them (see internal/fanout for the
// contract: every index runs, lowest-index error wins, one worker runs
// inline).
func fanOut(n, workers int, fn func(i int) error) error {
	return fanout.Run(n, workers, fn)
}

// lockedSource serialises a rand.Source64 so one *rand.Rand can be
// shared by shard 0's fungus and the table's knowledge shelf without
// racing. Single-threaded draw sequences are identical to the unlocked
// source, which is what keeps seeded experiment output byte-identical
// to the pre-sharding engine at shards=1.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func newLockedSource(seed int64) *lockedSource {
	return &lockedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	v := s.src.Int63()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	v := s.src.Uint64()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	s.src.Seed(seed)
	s.mu.Unlock()
}
