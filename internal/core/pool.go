package core

import (
	"math/rand"
	"sync"
	"sync/atomic"
)

// fanOut runs fn(0..n-1) over a bounded pool of at most `workers`
// goroutines and waits for all of them. Every index runs even when an
// earlier one fails; the error returned is the lowest-index one, so
// error selection is deterministic regardless of scheduling. With one
// worker (or one item) everything runs inline on the caller's
// goroutine — a one-shard table pays no synchronisation at all.
func fanOut(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 || n <= 1 {
		// Same contract as the pooled path: every index runs, lowest-
		// index error wins — which work completes must not depend on
		// the worker count.
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1) - 1)
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// lockedSource serialises a rand.Source64 so one *rand.Rand can be
// shared by shard 0's fungus and the table's knowledge shelf without
// racing. Single-threaded draw sequences are identical to the unlocked
// source, which is what keeps seeded experiment output byte-identical
// to the pre-sharding engine at shards=1.
type lockedSource struct {
	mu  sync.Mutex
	src rand.Source64
}

func newLockedSource(seed int64) *lockedSource {
	return &lockedSource{src: rand.NewSource(seed).(rand.Source64)}
}

func (s *lockedSource) Int63() int64 {
	s.mu.Lock()
	v := s.src.Int63()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Uint64() uint64 {
	s.mu.Lock()
	v := s.src.Uint64()
	s.mu.Unlock()
	return v
}

func (s *lockedSource) Seed(seed int64) {
	s.mu.Lock()
	s.src.Seed(seed)
	s.mu.Unlock()
}
