package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/storage"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
)

func shardedTable(t *testing.T, shards int, f fungus.Fungus) (*DB, *Table) {
	t.Helper()
	db, err := Open(DBConfig{Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	schema := tuple.MustSchema(
		tuple.Column{Name: "device", Kind: tuple.KindString},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
	)
	tbl, err := db.CreateTable("t", TableConfig{Schema: schema, Fungus: f, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

// TestShardedConcurrentHammer drives one sharded table from parallel
// Insert, Select (peek), Consume and Tick goroutines (run with -race)
// and then checks the engine's conservation invariants: every inserted
// tuple is exactly one of live, rotted or consumed; the merged extent
// scan yields strictly increasing, duplicate-free IDs; and freshness
// stays within [0, 1].
func TestShardedConcurrentHammer(t *testing.T) {
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 4, DecayRate: 0.2, AgeBias: 2})
	db, tbl := shardedTable(t, 4, egi)

	const (
		inserters  = 3
		perWorker  = 400
		ticks      = 60
		peeks      = 60
		consumes   = 40
		consumeCap = 5
	)
	var wg sync.WaitGroup
	for w := 0; w < inserters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := tbl.Insert(Row(fmt.Sprintf("dev-%d", w), float64(i%100))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < ticks; i++ {
			if _, err := db.Tick(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < peeks; i++ {
			if _, err := tbl.Query("temp >= 50", query.Peek); err != nil {
				t.Error(err)
				return
			}
			if _, err := tbl.SQL("SELECT device, COUNT(*) AS n FROM t GROUP BY device"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < consumes; i++ {
			if _, err := tbl.Query("temp < 25", query.Consume, QueryOpts{Limit: consumeCap}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	c := tbl.Counters()
	live := uint64(tbl.Len())
	if c.Inserted != uint64(inserters*perWorker) {
		t.Fatalf("inserted counter %d, want %d", c.Inserted, inserters*perWorker)
	}
	if live+c.Rotted+c.Consumed != c.Inserted {
		t.Fatalf("conservation broken: live %d + rotted %d + consumed %d != inserted %d",
			live, c.Rotted, c.Consumed, c.Inserted)
	}
	res, err := tbl.Query("", query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(res.Len()) != live {
		t.Fatalf("full scan %d != Len %d", res.Len(), live)
	}
	for i := range res.Tuples {
		tp := &res.Tuples[i]
		if i > 0 && tp.ID <= res.Tuples[i-1].ID {
			t.Fatalf("scan not strictly increasing at %d: %d after %d", i, tp.ID, res.Tuples[i-1].ID)
		}
		if tp.F < 0 || tp.F > tuple.Full {
			t.Fatalf("freshness out of bounds: %v", tp.F)
		}
	}
}

// scriptedRun drives a deterministic mixed workload (ingest, decay,
// consume, distill) and serialises everything observable — counters,
// live extent, report stream — into one string.
func scriptedRun(t *testing.T, seed int64, shards, workers int) string {
	t.Helper()
	db, err := Open(DBConfig{Seed: seed, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	gen := workload.NewIoT(50, seed)
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 3, DecayRate: 0.15, AgeBias: 2})
	tbl, err := db.CreateTable("iot", TableConfig{
		Schema:       gen.Schema(),
		Fungus:       egi,
		Shards:       shards,
		DistillOnRot: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for tick := 0; tick < 40; tick++ {
		for i := 0; i < 60; i++ {
			if _, err := tbl.Insert(gen.Next()); err != nil {
				t.Fatal(err)
			}
		}
		if tick%7 == 3 {
			res, err := tbl.Query("temp < 15", query.Consume, QueryOpts{Limit: 40, Distill: "cold"})
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "consume@%d=%d\n", tick, res.Len())
		}
		rep, err := db.Tick()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "tick@%d rot=%d live=%d\n", tick, rep.TotalRot, rep.TotalLive)
	}
	c := tbl.Counters()
	fmt.Fprintf(&b, "counters %s\n", c)
	res, err := tbl.Query("", query.Peek)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Tuples {
		tp := &res.Tuples[i]
		fmt.Fprintf(&b, "%d %d %.6f %v\n", tp.ID, tp.T, float64(tp.F), tp.Infected)
	}
	return b.String()
}

// TestShardedDeterminism: a fixed seed reproduces a sharded run exactly
// — same rot, same extent, same counters — across repeated runs and
// across worker-pool sizes (parallelism must never leak into results).
func TestShardedDeterminism(t *testing.T) {
	a := scriptedRun(t, 7, 4, 4)
	bRun := scriptedRun(t, 7, 4, 4)
	if a != bRun {
		t.Fatal("two identical sharded runs diverged")
	}
	c := scriptedRun(t, 7, 4, 1)
	if a != c {
		t.Fatal("worker count changed the result of a sharded run")
	}
	if d := scriptedRun(t, 8, 4, 4); a == d {
		t.Fatal("different seeds produced identical runs")
	}
}

// TestShardedAggregateMatchesUnsharded: the distributed aggregate path
// (per-shard partial aggregation, merged in shard order) must agree
// with the single-extent path on identical data.
func TestShardedAggregateMatchesUnsharded(t *testing.T) {
	render := func(shards int) string {
		_, tbl := shardedTable(t, shards, nil)
		for i := 0; i < 500; i++ {
			if _, err := tbl.Insert(Row(fmt.Sprintf("dev-%d", i%7), float64(i%40))); err != nil {
				t.Fatal(err)
			}
		}
		g, err := tbl.SQL("SELECT device, COUNT(*) AS n, AVG(temp) AS avg, MIN(temp) AS lo, MAX(temp) AS hi FROM t WHERE temp < 35 GROUP BY device ORDER BY device")
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		g.Render(&b)
		return b.String()
	}
	if one, four := render(1), render(4); one != four {
		t.Fatalf("aggregate grids diverge:\nshards=1:\n%s\nshards=4:\n%s", one, four)
	}
}

// TestShardedPersistenceAcrossShardCounts: a persistent sharded table
// recovers its extent even when reopened with a different shard count —
// IDs route tuples to owners, not file layout.
func TestShardedPersistenceAcrossShardCounts(t *testing.T) {
	dir := t.TempDir()
	schema := tuple.MustSchema(tuple.Column{Name: "v", Kind: tuple.KindInt})

	open := func(shards int) (*DB, *Table) {
		db, err := Open(DBConfig{Seed: 1, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable("p", TableConfig{Schema: schema, Shards: shards, Persist: true})
		if err != nil {
			t.Fatal(err)
		}
		return db, tbl
	}

	db, tbl := open(4)
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(Row(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := tbl.Query("v < 20", query.Consume); err != nil {
		t.Fatal(err)
	}
	wantLive := tbl.Len()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	for _, shards := range []int{4, 1, 3} {
		db, tbl = open(shards)
		if tbl.Len() != wantLive {
			t.Fatalf("shards=%d: recovered %d tuples, want %d", shards, tbl.Len(), wantLive)
		}
		res, err := tbl.Query("", query.Peek)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res.Tuples {
			if res.Tuples[i].Attrs[0].AsInt() < 20 {
				t.Fatalf("shards=%d: consumed tuple came back: %v", shards, res.Tuples[i])
			}
			if i > 0 && res.Tuples[i].ID <= res.Tuples[i-1].ID {
				t.Fatalf("shards=%d: recovered scan out of order", shards)
			}
		}
		// New inserts must not collide with recovered IDs.
		tp, err := tbl.Insert(Row(999))
		if err != nil {
			t.Fatal(err)
		}
		if tp.ID < 100 {
			t.Fatalf("shards=%d: new insert reused ID %d", shards, tp.ID)
		}
		wantLive++ // the probe tuple persists into the next reopen
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedBatchInsert: InsertBatch assigns the same IDs a
// row-at-a-time loop would and routes rows to their shards.
func TestShardedBatchInsert(t *testing.T) {
	_, tbl := shardedTable(t, 3, nil)
	rows := make([][]tuple.Value, 10)
	for i := range rows {
		rows[i] = Row("d", float64(i))
	}
	tps, err := tbl.InsertBatch(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, tp := range tps {
		if tp.ID != tuple.ID(i) {
			t.Fatalf("row %d got ID %d", i, tp.ID)
		}
	}
	// Interleave with single inserts: the rotation continues seamlessly.
	tp, err := tbl.Insert(Row("d", 0.0))
	if err != nil {
		t.Fatal(err)
	}
	if tp.ID != 10 {
		t.Fatalf("post-batch insert got ID %d, want 10", tp.ID)
	}
	if tbl.Len() != 11 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	if got := tbl.Shards(); got != 3 {
		t.Fatalf("Shards() = %d", got)
	}
}

// TestLegacySingleLogDirMigratesOnOpen: a table directory written by
// the old one-log-per-table engine (snapshot.db + wal.log, no manifest)
// must open through CreateTable unchanged — recovery migrates it in
// place to the per-shard layout and the data survives further restarts.
func TestLegacySingleLogDirMigratesOnOpen(t *testing.T) {
	dir := t.TempDir()
	schema := tuple.MustSchema(tuple.Column{Name: "v", Kind: tuple.KindInt})
	tdir := filepath.Join(dir, "p")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	st := storage.New(schema)
	log, err := wal.Open(filepath.Join(tdir, wal.LogFile))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		tp, err := st.Insert(1, Row(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := log.AppendInsert(tp); err != nil {
			t.Fatal(err)
		}
	}
	if err := wal.Checkpoint(tdir, st, log); err != nil {
		t.Fatal(err)
	}
	tp, err := st.Insert(2, Row(30)) // post-checkpoint, log only
	if err != nil {
		t.Fatal(err)
	}
	if err := log.AppendInsert(tp); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 2; pass++ { // second pass reopens the migrated layout
		db, err := Open(DBConfig{Seed: 1, Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		tbl, err := db.CreateTable("p", TableConfig{Schema: schema, Shards: 4, Persist: true})
		if err != nil {
			t.Fatal(err)
		}
		if tbl.Len() != 31 {
			t.Fatalf("pass %d: recovered %d tuples, want 31", pass, tbl.Len())
		}
		wi := tbl.WALInfo()
		if !wi.Persistent || wi.LogShards != 4 {
			t.Fatalf("pass %d: WALInfo = %+v, want 4 persistent shard logs", pass, wi)
		}
		if _, err := os.Stat(filepath.Join(tdir, wal.LogFile)); err == nil {
			t.Fatalf("pass %d: legacy wal.log survived migration", pass)
		}
		if _, err := os.Stat(filepath.Join(tdir, wal.ManifestFile)); err != nil {
			t.Fatalf("pass %d: no manifest after migration: %v", pass, err)
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
