// Package core assembles the paper's system: FungusDB, an embedded
// relational engine whose tables obey the two natural laws of Big Data.
//
// Law 1 (rotting): every table decays under a pluggable data fungus,
// applied by a periodic clock tick. Tuples whose freshness reaches zero
// are distilled into knowledge containers (if configured) and evicted;
// eventually an untended extent disappears completely.
//
// Law 2 (consume-on-query): tables can execute queries in Consume mode,
// where the extent is replaced by the union of the answer set and the
// reduced extent — matching tuples leave the table the moment they are
// answered, optionally distilled into a container on the way out.
//
// A DB owns a logical clock, a deterministic RNG and a set of tables;
// Tick advances decay across all of them. Tables are individually
// synchronised, so concurrent use from multiple goroutines is safe.
package core

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"fungusdb/internal/catalog"
	"fungusdb/internal/clock"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
)

// DBConfig configures Open.
type DBConfig struct {
	// Clock drives decay. Nil defaults to a Virtual clock at tick 0,
	// advanced by DB.Tick.
	Clock clock.Clock
	// Seed makes every random choice in the engine (fungus seeding,
	// reservoir sampling) reproducible. The zero seed is a valid seed.
	Seed int64
	// Dir, when non-empty, is the root directory for persistent tables
	// (each table gets a subdirectory). Empty keeps everything in
	// memory.
	Dir string
	// Workers bounds EACH fan-out level: DB.Tick runs at most Workers
	// tables at once, and every table fans its shards out over at most
	// Workers goroutines of its own — nested ticks can therefore run up
	// to Workers^2 goroutines briefly. 0 means GOMAXPROCS; 1 forces the
	// fully serial engine.
	Workers int
	// RecoveryParallelism bounds the per-shard WAL replay fan-out when a
	// persistent table reopens (each shard's snapshot + log recovers on
	// its own goroutine). 0 means Workers; 1 forces serial recovery.
	RecoveryParallelism int
	// Durability is the WAL sync level applied to persistent tables
	// whose TableConfig.Durability is left at wal.DurabilityDefault:
	// none (buffered, fsync only at checkpoint/close), grouped (batched
	// fsync per commit window, appends get a commit future), or strict
	// (fsync per append). DurabilityDefault here means DurabilityNone.
	Durability wal.DurabilityLevel
	// GroupCommitInterval is the grouped-mode flush tick (0 = the
	// wal.DefaultGroupInterval of 2ms).
	GroupCommitInterval time.Duration
	// GroupCommitSize flushes a grouped commit window early once this
	// many records are pending (0 = wal.DefaultGroupSize).
	GroupCommitSize int
}

// DB is a FungusDB instance.
type DB struct {
	mu     sync.Mutex
	cfg    DBConfig
	clk    clock.Clock
	tables map[string]*Table
	cat    *catalog.Catalog
	closed bool
}

// Open creates a DB. With cfg.Dir set, the directory is created if
// missing, the catalog is loaded, and every declaratively created table
// (see CreateTableFromSpec) is recreated with its data recovered.
// Tables created with plain CreateTable and Persist recover their data
// too, but their configuration must be re-supplied by the caller.
func Open(cfg DBConfig) (*DB, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.NewVirtual(0)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	db := &DB{
		cfg:    cfg,
		clk:    cfg.Clock,
		tables: make(map[string]*Table),
		cat:    &catalog.Catalog{},
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: open dir: %w", err)
		}
		cat, err := catalog.Load(cfg.Dir)
		if err != nil {
			return nil, err
		}
		db.cat = cat
		for _, spec := range cat.Tables {
			if _, err := db.createFromSpec(spec); err != nil {
				return nil, fmt.Errorf("core: recreate table %q: %w", spec.Name, err)
			}
		}
	}
	return db, nil
}

// CreateTableFromSpec creates a persistent table from a declarative
// spec and records it in the DB catalog, so a future Open of the same
// directory recreates it automatically. The DB must have a Dir.
func (db *DB) CreateTableFromSpec(spec catalog.TableSpec) (*Table, error) {
	if db.cfg.Dir == "" {
		return nil, fmt.Errorf("core: spec tables need a DB Dir")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t, err := db.createFromSpec(spec)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	db.cat.Put(spec)
	err = db.cat.Save(db.cfg.Dir)
	db.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return t, nil
}

func (db *DB) createFromSpec(spec catalog.TableSpec) (*Table, error) {
	schema, err := tuple.ParseSchema(spec.Schema)
	if err != nil {
		return nil, err
	}
	f, err := spec.Fungus.Build(schema)
	if err != nil {
		return nil, err
	}
	durability, err := wal.ParseDurability(spec.Durability)
	if err != nil {
		return nil, err
	}
	return db.CreateTable(spec.Name, TableConfig{
		Schema:            schema,
		Fungus:            f,
		Shards:            spec.Shards,
		SegmentSize:       spec.SegmentSize,
		TickEvery:         spec.TickEvery,
		TouchOnRead:       spec.TouchOnRead,
		DistillOnRot:      spec.DistillOnRot,
		ContainerHalfLife: spec.ContainerHalfLife,
		CheckpointEvery:   spec.CheckpointEvery,
		Durability:        durability,
		Persist:           true,
	})
}

// TableSpecs returns a copy of the catalog's declarative table specs,
// sorted by name. These are the tables a replication follower can
// mirror: spec-created tables are persistent (they have a WAL to ship)
// and self-describing (the follower rebuilds schema, fungus and shard
// count from the spec alone).
func (db *DB) TableSpecs() []catalog.TableSpec {
	db.mu.Lock()
	defer db.mu.Unlock()
	out := append([]catalog.TableSpec(nil), db.cat.Tables...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CreateReplicaFromSpec creates an in-memory, read-only replica table
// from a leader's declarative spec. Persistence and checkpointing stay
// off (the leader owns durability); everything else — schema, fungus,
// shard count, segment size — matches the leader so replayed decay and
// restored tuples land identically.
func (db *DB) CreateReplicaFromSpec(spec catalog.TableSpec) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	schema, err := tuple.ParseSchema(spec.Schema)
	if err != nil {
		return nil, err
	}
	f, err := spec.Fungus.Build(schema)
	if err != nil {
		return nil, err
	}
	return db.CreateTable(spec.Name, TableConfig{
		Schema:            schema,
		Fungus:            f,
		Shards:            spec.Shards,
		SegmentSize:       spec.SegmentSize,
		TickEvery:         spec.TickEvery,
		ContainerHalfLife: spec.ContainerHalfLife,
		ReadOnly:          true,
	})
}

// Now returns the current logical tick.
func (db *DB) Now() clock.Tick { return db.clk.Now() }

// CreateTable registers a new table. Table names must be unique and
// non-empty. When cfg.Persist is true the DB must have been opened with
// a Dir; existing snapshot/WAL state for the table is recovered.
func (db *DB) CreateTable(name string, cfg TableConfig) (*Table, error) {
	if name == "" {
		return nil, fmt.Errorf("core: empty table name")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("core: table %q needs a schema", name)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, fmt.Errorf("core: db is closed")
	}
	if _, dup := db.tables[name]; dup {
		return nil, fmt.Errorf("core: table %q already exists", name)
	}
	dir := ""
	if cfg.Persist {
		if db.cfg.Dir == "" {
			return nil, fmt.Errorf("core: table %q wants persistence but the DB has no Dir", name)
		}
		dir = filepath.Join(db.cfg.Dir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("core: table dir: %w", err)
		}
	}
	// Per-table seed derived from the DB seed and the table name, so
	// adding a table never perturbs another table's randomness; the
	// table derives one RNG stream per shard from it.
	seed := db.cfg.Seed
	for _, r := range name {
		seed = seed*1099511628211 + int64(r)
	}
	t, err := newTable(name, cfg, db.clk, seed, dir, db.cfg)
	if err != nil {
		return nil, err
	}
	db.tables[name] = t
	return t, nil
}

// Table returns the named table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("core: no table %q", name)
	}
	return t, nil
}

// Tables returns the table names, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	//fungusvet:allow determinism -- keys are sorted before they escape
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DropTable closes and removes a table, including its catalog entry.
// Persistent data on disk is left behind (drop is a catalog operation,
// not a purge).
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	t, ok := db.tables[name]
	if ok {
		delete(db.tables, name)
	}
	var catErr error
	if ok && db.cat.Remove(name) && db.cfg.Dir != "" {
		catErr = db.cat.Save(db.cfg.Dir)
	}
	db.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no table %q", name)
	}
	if err := t.Close(); err != nil {
		return err
	}
	return catErr
}

// TickReport summarises one decay cycle across the DB.
type TickReport struct {
	Now       clock.Tick
	PerTable  map[string]TableTickReport
	TotalRot  int
	TotalLive int
}

// Tick advances the clock one cycle (when it is an Advancer) and applies
// every table's fungus, distillation and container decay. Tables decay
// concurrently over the worker pool (each table further fans out over
// its shards); the report is assembled in sorted table order, so the
// output is deterministic regardless of scheduling.
func (db *DB) Tick() (TickReport, error) {
	db.mu.Lock()
	if adv, ok := db.clk.(clock.Advancer); ok {
		adv.Advance(1)
	}
	tables := make([]*Table, 0, len(db.tables))
	//fungusvet:allow determinism -- tables are sorted by name below, before any tick runs
	for _, t := range db.tables {
		tables = append(tables, t)
	}
	workers := db.cfg.Workers
	db.mu.Unlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].name < tables[j].name })

	rep := TickReport{Now: db.clk.Now(), PerTable: make(map[string]TableTickReport, len(tables))}
	reps := make([]TableTickReport, len(tables))
	err := fanOut(len(tables), workers, func(i int) error {
		tr, err := tables[i].Tick()
		if err != nil {
			return fmt.Errorf("core: tick table %q: %w", tables[i].name, err)
		}
		reps[i] = tr
		return nil
	})
	for i, t := range tables {
		rep.PerTable[t.name] = reps[i]
		rep.TotalRot += reps[i].Rotted
		rep.TotalLive += reps[i].Live
	}
	if err != nil {
		return rep, err
	}
	return rep, nil
}

// Close flushes and closes every table. The DB cannot be used after.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	// Close in sorted name order: map order would make BOTH the close
	// sequence and which error wins (firstErr) vary run to run.
	names := make([]string, 0, len(db.tables))
	//fungusvet:allow determinism -- keys are sorted before any table is closed
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	var firstErr error
	for _, n := range names {
		if err := db.tables[n].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	db.tables = nil
	return firstErr
}

// Row is a convenience constructor turning native Go values into typed
// attribute values: int/int64 -> INT, float64 -> FLOAT, string ->
// STRING, bool -> BOOL. It panics on other types; it exists for
// examples and tests where the schema is statically known.
func Row(vals ...any) []tuple.Value {
	out := make([]tuple.Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			out[i] = tuple.Int(int64(x))
		case int64:
			out[i] = tuple.Int(x)
		case float64:
			out[i] = tuple.Float(x)
		case string:
			out[i] = tuple.String_(x)
		case bool:
			out[i] = tuple.Bool(x)
		case tuple.Value:
			out[i] = x
		default:
			panic(fmt.Sprintf("core: Row cannot convert %T", v))
		}
	}
	return out
}
