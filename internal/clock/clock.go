// Package clock provides the time substrate for fungus decay.
//
// The paper's natural laws are phrased against "a periodic clock of T
// seconds". Real deployments would use wall time; experiments need a
// deterministic, fast-forwardable clock. Both are modelled by the Clock
// interface: a monotonically non-decreasing sequence of logical Ticks.
// All decay dynamics in the repository depend only on tick counts, never
// on wall-clock durations, which is what makes the simulation faithful
// (see DESIGN.md, substitutions table).
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Tick is a logical instant. Tick 0 is the epoch; decay laws are applied
// at integer ticks.
type Tick uint64

// String implements fmt.Stringer.
func (t Tick) String() string { return fmt.Sprintf("t%d", uint64(t)) }

// Clock exposes the current logical time.
type Clock interface {
	// Now returns the current tick. It never decreases.
	Now() Tick
}

// Advancer is a Clock whose time is driven by the caller. The simulator
// and all tests use Advancers so runs are reproducible.
type Advancer interface {
	Clock
	// Advance moves the clock forward by n ticks and returns the new time.
	Advance(n uint64) Tick
}

// Virtual is a manually advanced clock. The zero value is ready to use
// and reads tick 0. Virtual is safe for concurrent use.
type Virtual struct {
	mu  sync.RWMutex
	now Tick
}

// NewVirtual returns a Virtual clock positioned at start.
func NewVirtual(start Tick) *Virtual {
	return &Virtual{now: start}
}

// Now returns the current tick.
func (v *Virtual) Now() Tick {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward n ticks and returns the new tick.
func (v *Virtual) Advance(n uint64) Tick {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.now += Tick(n)
	return v.now
}

// Set jumps the clock to tick t. Set panics if t would move time
// backwards; logical time is monotone by contract.
func (v *Virtual) Set(t Tick) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t < v.now {
		panic(fmt.Sprintf("clock: Set(%v) would move time backwards from %v", t, v.now))
	}
	v.now = t
}

// Wall is a Clock deriving ticks from wall time: one tick per period.
// It exists so a deployment can run the same fungus schedules against
// real time; experiments never use it.
type Wall struct {
	start  time.Time
	period time.Duration
	nowFn  func() time.Time
}

// NewWall returns a wall clock ticking once per period, counting from
// start. It panics if period is not positive.
func NewWall(start time.Time, period time.Duration) *Wall {
	if period <= 0 {
		panic("clock: wall period must be positive")
	}
	return &Wall{start: start, period: period, nowFn: time.Now}
}

// Now returns the number of whole periods elapsed since start. Times
// before start read as tick 0.
func (w *Wall) Now() Tick {
	elapsed := w.nowFn().Sub(w.start)
	if elapsed < 0 {
		return 0
	}
	return Tick(elapsed / w.period)
}

// Fixed is an immutable clock frozen at a single tick, useful for
// constructing snapshots "as of" a time.
type Fixed Tick

// Now returns the frozen tick.
func (f Fixed) Now() Tick { return Tick(f) }
