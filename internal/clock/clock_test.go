package clock

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualZeroValue(t *testing.T) {
	var v Virtual
	if got := v.Now(); got != 0 {
		t.Fatalf("zero Virtual.Now() = %v, want 0", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(5)
	if got := v.Now(); got != 5 {
		t.Fatalf("Now() = %v, want 5", got)
	}
	if got := v.Advance(3); got != 8 {
		t.Fatalf("Advance(3) = %v, want 8", got)
	}
	if got := v.Advance(0); got != 8 {
		t.Fatalf("Advance(0) = %v, want 8", got)
	}
	if got := v.Now(); got != 8 {
		t.Fatalf("Now() = %v, want 8", got)
	}
}

func TestVirtualSet(t *testing.T) {
	v := NewVirtual(2)
	v.Set(10)
	if got := v.Now(); got != 10 {
		t.Fatalf("Now() = %v, want 10", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	v.Set(3)
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(0)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				v.Advance(1)
			}
		}()
	}
	wg.Wait()
	if got := v.Now(); got != workers*per {
		t.Fatalf("Now() = %v, want %d", got, workers*per)
	}
}

func TestWallTicks(t *testing.T) {
	start := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	w := NewWall(start, time.Minute)
	now := start
	w.nowFn = func() time.Time { return now }

	if got := w.Now(); got != 0 {
		t.Fatalf("at start Now() = %v, want 0", got)
	}
	now = start.Add(59 * time.Second)
	if got := w.Now(); got != 0 {
		t.Fatalf("at 59s Now() = %v, want 0", got)
	}
	now = start.Add(61 * time.Second)
	if got := w.Now(); got != 1 {
		t.Fatalf("at 61s Now() = %v, want 1", got)
	}
	now = start.Add(-time.Hour)
	if got := w.Now(); got != 0 {
		t.Fatalf("before start Now() = %v, want 0", got)
	}
}

func TestWallBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWall(0) did not panic")
		}
	}()
	NewWall(time.Now(), 0)
}

func TestFixed(t *testing.T) {
	f := Fixed(42)
	if got := f.Now(); got != 42 {
		t.Fatalf("Fixed.Now() = %v, want 42", got)
	}
}

func TestTickString(t *testing.T) {
	if got := Tick(7).String(); got != "t7" {
		t.Fatalf("Tick(7).String() = %q, want \"t7\"", got)
	}
}
