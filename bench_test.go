// Package fungusdb_test holds the benchmark harness. One benchmark per
// experiment table/figure from DESIGN.md (BenchmarkE1..E9, which run
// the sim harness end to end and report rows via -v or cmd/fungusbench),
// plus ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks of the hot paths.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//	go run ./cmd/fungusbench            # full-scale tables
package fungusdb_test

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fungusdb/internal/clock"
	"fungusdb/internal/container"
	"fungusdb/internal/core"
	"fungusdb/internal/fungus"
	"fungusdb/internal/query"
	"fungusdb/internal/server"
	"fungusdb/internal/sim"
	"fungusdb/internal/storage"
	"fungusdb/internal/stream"
	"fungusdb/internal/tuple"
	"fungusdb/internal/wal"
	"fungusdb/internal/workload"
)

// benchScale keeps per-iteration experiment cost reasonable while
// preserving every shape (they are scale-invariant; see sim tests).
const benchScale = 0.1

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := sim.Config{Scale: benchScale, Seed: 20150104}
	var table *sim.Table
	for i := 0; i < b.N; i++ {
		table = sim.Runner[id](cfg)
	}
	if table == nil || len(table.Rows) == 0 {
		b.Fatalf("%s produced no rows", id)
	}
	b.ReportMetric(float64(len(table.Rows)), "rows")
}

// BenchmarkE1ChessBoard regenerates DESIGN.md "Table 1".
func BenchmarkE1ChessBoard(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2RotSpots regenerates DESIGN.md "Figure 1".
func BenchmarkE2RotSpots(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3BlueCheese regenerates DESIGN.md "Table 2".
func BenchmarkE3BlueCheese(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Consume regenerates DESIGN.md "Table 3".
func BenchmarkE4Consume(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Distill regenerates DESIGN.md "Table 4".
func BenchmarkE5Distill(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6Extinction regenerates DESIGN.md "Figure 2".
func BenchmarkE6Extinction(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Health regenerates DESIGN.md "Figure 3".
func BenchmarkE7Health(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8SteadyState regenerates DESIGN.md "Table 5".
func BenchmarkE8SteadyState(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9FreshnessTradeoff regenerates DESIGN.md "Figure 4".
func BenchmarkE9FreshnessTradeoff(b *testing.B) { benchExperiment(b, "E9") }

// --- micro-benchmarks of the hot paths -------------------------------

var microSchema = tuple.MustSchema(
	tuple.Column{Name: "device", Kind: tuple.KindString},
	tuple.Column{Name: "temp", Kind: tuple.KindFloat},
)

func microTable(b *testing.B, f fungus.Fungus, n int) (*core.DB, *core.Table) {
	b.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: microSchema, Fungus: f})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := tbl.Insert(core.Row("sensor-1", float64(i%100))); err != nil {
			b.Fatal(err)
		}
	}
	return db, tbl
}

// BenchmarkInsert measures raw single-tuple insertion.
func BenchmarkInsert(b *testing.B) {
	_, tbl := microTable(b, nil, 0)
	row := core.Row("sensor-1", 21.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(row); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.Len()), "final_extent")
}

// BenchmarkPeekQuery measures a 1%-selective scan over 100k tuples.
func BenchmarkPeekQuery(b *testing.B) {
	_, tbl := microTable(b, nil, 100_000)
	pred, err := tbl.Compile("temp = 50")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := tbl.QueryPred(pred, query.Peek)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 1000 {
			b.Fatalf("answer %d", res.Len())
		}
	}
}

// BenchmarkConsumeQuery measures consume-mode answers of 1000 tuples,
// reloading between iterations.
func BenchmarkConsumeQuery(b *testing.B) {
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		name := fmt.Sprintf("t%d", i)
		tbl, err := db.CreateTable(name, core.TableConfig{Schema: microSchema})
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10_000; j++ {
			tbl.Insert(core.Row("s", float64(j%100)))
		}
		b.StartTimer()
		res, err := tbl.Query("temp < 10", query.Consume)
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 1000 {
			b.Fatalf("consumed %d", res.Len())
		}
		b.StopTimer()
		db.DropTable(name)
		b.StartTimer()
	}
}

// BenchmarkTickEGI measures one steady-state EGI decay cycle over a
// ~100k extent: each iteration inserts a tick's worth of rows and runs
// one tick (the engine evicts what rots, so the infection front stays
// at its equilibrium size rather than saturating the extent).
func BenchmarkTickEGI(b *testing.B) {
	egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 8, DecayRate: 0.25, AgeBias: 2})
	db, tbl := microTable(b, egi, 100_000)
	row := core.Row("sensor-1", 20.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 100; j++ {
			if _, err := tbl.Insert(row); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := db.Tick(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(tbl.Len()), "extent")
}

// BenchmarkTickTTL measures one TTL decay cycle over a 100k extent
// (full scan, unlike EGI's infected-front walk).
func BenchmarkTickTTL(b *testing.B) {
	db, _ := microTable(b, fungus.TTL{Lifetime: 1 << 40}, 100_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

// shardedTable builds a table with the given shard count over a 100k
// extent (IoT-shaped rows, no decay unless f is set).
func shardedTable(b *testing.B, shards int, f fungus.Fungus, n int) (*core.DB, *core.Table) {
	b.Helper()
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: microSchema, Fungus: f, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]tuple.Value, 1024)
	for done := 0; done < n; {
		batch := len(rows)
		if rem := n - done; rem < batch {
			batch = rem
		}
		for i := 0; i < batch; i++ {
			rows[i] = core.Row("sensor-1", float64((done+i)%100))
		}
		if _, err := tbl.InsertBatch(rows[:batch]); err != nil {
			b.Fatal(err)
		}
		done += batch
	}
	return db, tbl
}

// BenchmarkShardedTick measures one whole-extent decay cycle over a
// 100k extent as the shard count grows: each shard's fungus walks its
// slice of the time axis on its own worker, so on a multi-core runner
// 4+ shards should tick >= 2x faster than 1 shard. The Linear rate is
// tiny so the extent is stable across iterations (nothing rots within
// the run).
func BenchmarkShardedTick(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			db, _ := shardedTable(b, shards, fungus.Linear{Rate: 1e-12}, 100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Tick(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedSelect measures a 1%-selective peek scan over a 100k
// extent as the shard count grows; shards scan in parallel and the
// partial answers merge back into global insertion order.
func BenchmarkShardedSelect(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			_, tbl := shardedTable(b, shards, nil, 100_000)
			pred, err := tbl.Compile("temp = 50")
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := tbl.QueryPred(pred, query.Peek)
				if err != nil {
					b.Fatal(err)
				}
				if res.Len() != 1000 {
					b.Fatalf("answer %d", res.Len())
				}
			}
		})
	}
}

// BenchmarkShardedGroupBy measures the distributed aggregate path: each
// shard folds its matches into a partial aggregator, merged in shard
// order, so grouped analytics never materialise matching tuples.
func BenchmarkShardedGroupBy(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			_, tbl := shardedTable(b, shards, nil, 100_000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				g, err := tbl.SQL("SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM t GROUP BY device")
				if err != nil {
					b.Fatal(err)
				}
				if len(g.Rows) != 1 {
					b.Fatal("bad grid")
				}
			}
		})
	}
}

// BenchmarkPreparedQuery compares the prepared plan/execute split with
// the unprepared front doors on a 1%-selective parameterised select
// over a 100k extent:
//
//	mode=prepared   one PreparedQuery, Execute(param) per iteration —
//	                zero parse/validate on the hot path
//	mode=unprepared Table.SQL with a fixed source — full shim, but the
//	                per-table plan LRU absorbs the compile
//	mode=uncached   a distinct source text every iteration, so every
//	                query pays parse + plan + execute
func BenchmarkPreparedQuery(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		_, tbl := shardedTable(b, shards, nil, 100_000)
		pq, err := tbl.Prepare("SELECT device, temp FROM t WHERE temp = ?")
		if err != nil {
			b.Fatal(err)
		}
		drain := func(rows *query.Rows) {
			b.Helper()
			n := 0
			for rows.Next() {
				n++
			}
			if err := rows.Close(); err != nil {
				b.Fatal(err)
			}
			if n != 1000 {
				b.Fatalf("answer %d", n)
			}
		}
		b.Run(fmt.Sprintf("mode=prepared/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := pq.Execute(tuple.Float(50))
				if err != nil {
					b.Fatal(err)
				}
				drain(rows)
			}
		})
		b.Run(fmt.Sprintf("mode=unprepared/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				g, err := tbl.SQL("SELECT device, temp FROM t WHERE temp = 50")
				if err != nil {
					b.Fatal(err)
				}
				if len(g.Rows) != 1000 {
					b.Fatalf("answer %d", len(g.Rows))
				}
			}
		})
		b.Run(fmt.Sprintf("mode=uncached/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// A distinct source text per iteration defeats the plan
				// LRU; varying only the (never-reached) LIMIT keeps the
				// per-tuple work identical to the other modes.
				g, err := tbl.SQL(fmt.Sprintf("SELECT device, temp FROM t WHERE temp = 50 LIMIT %d", 100_000+i))
				if err != nil {
					b.Fatal(err)
				}
				if len(g.Rows) != 1000 {
					b.Fatalf("answer %d", len(g.Rows))
				}
			}
		})
	}
}

// BenchmarkPlanCache isolates what the per-table compiled-statement
// LRU saves: hit = Table.Prepare of a cached statement, miss = the
// full parse + schema validation it would otherwise repeat.
func BenchmarkPlanCache(b *testing.B) {
	_, tbl := shardedTable(b, 1, nil, 16)
	src := "SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM t WHERE temp >= ? AND device LIKE 'sensor-%' GROUP BY device ORDER BY n DESC LIMIT 10"
	b.Run("hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tbl.Prepare(src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stmt, err := query.ParseStatement(src)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := stmt.Plan(tbl.Schema()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkShardedIngest measures batched, shard-routed bulk insertion.
func BenchmarkShardedIngest(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			_, tbl := shardedTable(b, shards, nil, 0)
			rows := make([][]tuple.Value, 1024)
			for i := range rows {
				rows[i] = core.Row("sensor-1", float64(i%100))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tbl.InsertBatch(rows); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(tbl.Len()), "final_extent")
		})
	}
}

// BenchmarkGroupCommit measures row-at-a-time durable ingestion into a
// persistent table across WAL sync levels × shard counts. none never
// fsyncs on the insert path, strict fsyncs the owning shard's log per
// append, and grouped amortises fsyncs over the commit window (the
// background daemon syncs each dirty shard once per window) — grouped
// throughput should sit close to none and far above strict.
func BenchmarkGroupCommit(b *testing.B) {
	for _, shards := range []int{1, 4} {
		for _, level := range []wal.DurabilityLevel{wal.DurabilityNone, wal.DurabilityGrouped, wal.DurabilityStrict} {
			b.Run(fmt.Sprintf("level=%s/shards=%d", level, shards), func(b *testing.B) {
				db, err := core.Open(core.DBConfig{Seed: 1, Dir: b.TempDir(), Durability: level})
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { db.Close() })
				tbl, err := db.CreateTable("t", core.TableConfig{Schema: microSchema, Shards: shards, Persist: true})
				if err != nil {
					b.Fatal(err)
				}
				row := core.Row("sensor-1", 21.5)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := tbl.Insert(row); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGroupCommitWait measures acknowledged (wait-for-durable)
// ingestion in grouped mode with concurrent writers: each goroutine
// inserts and blocks on its commit future, so the group-commit window
// is what batches their fsyncs together.
func BenchmarkGroupCommitWait(b *testing.B) {
	db, err := core.Open(core.DBConfig{Seed: 1, Dir: b.TempDir(), Durability: wal.DurabilityGrouped})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: microSchema, Shards: 4, Persist: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		row := core.Row("sensor-1", 21.5)
		for pb.Next() {
			_, w, err := tbl.InsertDurable(row)
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Wait(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALAppend measures insert logging + fsync-free append.
func BenchmarkWALAppend(b *testing.B) {
	dir := b.TempDir()
	log, err := wal.Open(filepath.Join(dir, wal.LogFile))
	if err != nil {
		b.Fatal(err)
	}
	defer log.Close()
	tp := tuple.New(1, 2, core.Row("sensor-1", 21.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := log.AppendInsert(tp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRecover measures snapshot+WAL recovery of a 50k extent.
func BenchmarkRecover(b *testing.B) {
	dir := b.TempDir()
	st := storage.New(microSchema)
	for i := 0; i < 50_000; i++ {
		st.Insert(clock.Tick(i), core.Row("s", float64(i)))
	}
	if err := wal.WriteSnapshot(filepath.Join(dir, wal.SnapshotFile), st); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, err := wal.Recover(dir, microSchema)
		if err != nil {
			b.Fatal(err)
		}
		if got.Len() != 50_000 {
			b.Fatal("bad recovery")
		}
	}
}

// BenchmarkRecovery measures cold recovery of a populated multi-shard
// table in the per-shard WAL layout: every shard loads its own snapshot
// and replays its own log, all shards in parallel. Scaling with the
// shard count on a multi-core runner is the parallel-replay win; the
// workload is log-heavy (most tuples live only in the logs) so replay
// dominates over snapshot decoding.
func BenchmarkRecovery(b *testing.B) {
	const snapshotted, logged = 10_000, 40_000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			dir := b.TempDir()
			ss := storage.NewSharded(microSchema, shards)
			slog, err := wal.OpenSharded(dir, shards)
			if err != nil {
				b.Fatal(err)
			}
			insert := func(k int) {
				i := ss.NextShard()
				tp, err := ss.InsertShard(i, 1, core.Row("sensor-1", float64(k%100)))
				if err != nil {
					b.Fatal(err)
				}
				if err := slog.AppendInsert(i, tp); err != nil {
					b.Fatal(err)
				}
			}
			for k := 0; k < snapshotted; k++ {
				insert(k)
			}
			if err := slog.Checkpoint(ss, shards); err != nil {
				b.Fatal(err)
			}
			for k := 0; k < logged; k++ {
				insert(snapshotted + k)
			}
			if err := slog.Close(); err != nil {
				b.Fatal(err)
			}
			par := runtime.GOMAXPROCS(0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := storage.NewSharded(microSchema, shards)
				if err := wal.RecoverSharded(dir, got, par); err != nil {
					b.Fatal(err)
				}
				if got.Len() != snapshotted+logged {
					b.Fatalf("recovered %d tuples", got.Len())
				}
			}
		})
	}
}

// --- ablations called out in DESIGN.md --------------------------------

// BenchmarkAblationEGIScan contrasts the shipped EGI (infected-front
// walk with segment-aware neighbour lookups) against a naive variant
// that re-scans the whole extent every tick to find its infected
// tuples. Each iteration starts from the same controlled state — 64
// fresh spots on a clean 50k extent — so the comparison measures the
// early/steady phase the front-based design exists for (at full
// saturation both degenerate to a whole-extent walk).
func BenchmarkAblationEGIScan(b *testing.B) {
	const n, spots = 50_000, 64
	s := storage.New(microSchema)
	for i := 0; i < n; i++ {
		s.Insert(1, core.Row("s", float64(i)))
	}
	heal := func() {
		s.Scan(func(tp *tuple.Tuple) bool {
			tp.F = tuple.Full
			tp.Infected = false
			return true
		})
	}
	plant := func(egi *fungus.EGI) {
		for k := 0; k < spots; k++ {
			egi.Seed(tuple.ID(k * (n / spots)))
		}
	}

	b.Run("front-walk", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			heal()
			egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 0, DecayRate: 0.01, AgeBias: 2})
			plant(egi)
			b.StartTimer()
			egi.Tick(clock.Tick(i), s, rng, nil)
		}
	})

	b.Run("full-scan", func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		var ids []tuple.ID
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			heal()
			egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 0, DecayRate: 0.01, AgeBias: 2})
			plant(egi)
			b.StartTimer()
			// The naive design: walk every live tuple to locate the
			// infection before running the same spread logic.
			ids = s.ScanIDs(ids[:0])
			touched := 0
			for _, id := range ids {
				tp, err := s.Get(id)
				if err == nil && tp.Infected {
					touched++
				}
			}
			egi.Tick(clock.Tick(i), s, rng, nil)
		}
	})
}

// BenchmarkAblationCompaction contrasts deferred compaction (shipped)
// with eager per-evict compaction on an eviction-heavy pattern.
func BenchmarkAblationCompaction(b *testing.B) {
	const n = 20_000
	run := func(b *testing.B, eager bool) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := storage.New(microSchema, storage.WithSegmentSize(512))
			for j := 0; j < n; j++ {
				s.Insert(1, core.Row("s", float64(j)))
			}
			b.StartTimer()
			for j := 0; j < n; j += 2 { // evict every other tuple
				s.Evict(tuple.ID(j))
				if eager {
					s.Compact()
				}
			}
			if !eager {
				s.Compact()
			}
		}
	}
	b.Run("deferred", func(b *testing.B) { run(b, false) })
	b.Run("eager", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationConsume contrasts consume-by-tombstone (shipped)
// with a copy-rebuild strategy that materialises the surviving extent.
func BenchmarkAblationConsume(b *testing.B) {
	const n = 20_000
	fill := func() *storage.Store {
		s := storage.New(microSchema)
		for j := 0; j < n; j++ {
			s.Insert(1, core.Row("s", float64(j%100)))
		}
		return s
	}
	pred := query.MustCompile("temp < 50", microSchema)

	b.Run("tombstone", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := fill()
			b.StartTimer()
			var victims []tuple.ID
			s.Scan(func(tp *tuple.Tuple) bool {
				if ok, _ := pred.Match(tp); ok {
					victims = append(victims, tp.ID)
				}
				return true
			})
			for _, id := range victims {
				s.Evict(id)
			}
			if s.Len() != n/2 {
				b.Fatal("bad consume")
			}
		}
	})

	b.Run("copy-rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			s := fill()
			b.StartTimer()
			rebuilt := storage.New(microSchema)
			s.Scan(func(tp *tuple.Tuple) bool {
				if ok, _ := pred.Match(tp); !ok {
					rebuilt.Insert(tp.T, tp.Clone().Attrs)
				}
				return true
			})
			if rebuilt.Len() != n/2 {
				b.Fatal("bad rebuild")
			}
		}
	})
}

// BenchmarkAblationAgeBias sweeps EGI's seed-position exponent, the
// knob DESIGN.md introduces to resolve the paper's ambiguous seeding
// sentence. Tick cost is identical; what changes is where rot starts,
// reported as the mean seed position (0 = oldest end of the time axis).
// The infection is cleared between iterations so the metric reflects
// the seeding distribution, not accumulated saturation.
func BenchmarkAblationAgeBias(b *testing.B) {
	const n = 10_000
	for _, bias := range []float64{0.5, 1, 2, 4} {
		b.Run(fmt.Sprintf("bias=%g", bias), func(b *testing.B) {
			s := storage.New(microSchema)
			for j := 0; j < n; j++ {
				s.Insert(1, core.Row("s", 0.0))
			}
			egi := fungus.NewEGI(fungus.EGIConfig{SeedsPerTick: 1, DecayRate: 0, AgeBias: bias})
			rng := rand.New(rand.NewSource(1))
			var sum, cnt float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				egi.Tick(clock.Tick(i), s, rng, nil)
				b.StopTimer()
				// One seed (plus its two neighbours) is infected; its
				// position is the midpoint of the infected ID range.
				lo, hi, found := tuple.ID(0), tuple.ID(0), false
				s.Scan(func(tp *tuple.Tuple) bool {
					if tp.Infected {
						if !found {
							lo = tp.ID
							found = true
						}
						hi = tp.ID
						tp.Infected = false
						tp.F = tuple.Full
						egi.Forget(tp.ID)
					}
					return true
				})
				if found {
					sum += float64(lo+hi) / 2
					cnt++
				}
				b.StartTimer()
			}
			b.StopTimer()
			if cnt > 0 {
				b.ReportMetric(sum/cnt/n, "mean_seed_pos")
			}
		})
	}
}

// TestMain keeps benchmark temp dirs out of the repository tree.
func TestMain(m *testing.M) {
	os.Exit(m.Run())
}

// BenchmarkSQLParse measures SELECT statement parsing.
func BenchmarkSQLParse(b *testing.B) {
	const src = "SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM t WHERE temp BETWEEN 10 AND 30 AND device LIKE 'sensor-%' GROUP BY device ORDER BY n DESC LIMIT 10"
	for i := 0; i < b.N; i++ {
		if _, err := query.ParseSelect(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSQLGroupBy measures a grouped aggregate over 100k tuples.
func BenchmarkSQLGroupBy(b *testing.B) {
	_, tbl := microTable(b, nil, 0)
	for i := 0; i < 100_000; i++ {
		tbl.Insert(core.Row(fmt.Sprintf("sensor-%d", i%50), float64(i%100)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := tbl.SQL("SELECT device, COUNT(*) AS n, AVG(temp) AS avg FROM t GROUP BY device ORDER BY n DESC LIMIT 5")
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Rows) != 5 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkStreamPoll measures rule evaluation over 10k fresh tuples
// with three standing rules attached.
func BenchmarkStreamPoll(b *testing.B) {
	_, tbl := microTable(b, nil, 0)
	mon := stream.NewMonitor(tbl)
	sink := func(stream.Event) {}
	if err := mon.OnMatch("hot", "temp > 90", sink); err != nil {
		b.Fatal(err)
	}
	if err := mon.OnMatch("all", "", sink); err != nil {
		b.Fatal(err)
	}
	if err := mon.OnSequence("seq", "temp = 0", "temp = 99", 100, sink); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 10_000; j++ {
			tbl.Insert(core.Row("s", float64(j%100)))
		}
		b.StartTimer()
		if _, err := mon.Poll(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDigestAbsorb measures per-tuple distillation cost.
func BenchmarkDigestAbsorb(b *testing.B) {
	gen := workload.NewClickstream(10000, 500, 1)
	d, err := container.NewDigest(gen.Schema(), container.DefaultDigestConfig(), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	tp := tuple.New(0, 1, gen.Next())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp.ID = tuple.ID(i)
		if err := d.Absorb(&tp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDigestMerge measures rolling two 10k-tuple containers up.
func BenchmarkDigestMerge(b *testing.B) {
	gen := workload.NewClickstream(10000, 500, 1)
	build := func() *container.Digest {
		d, err := container.NewDigest(gen.Schema(), container.DefaultDigestConfig(), rand.New(rand.NewSource(1)))
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < 10_000; i++ {
			tp := tuple.New(tuple.ID(i), 1, gen.Next())
			d.Absorb(&tp)
		}
		return d
	}
	src := build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dst := build()
		b.StartTimer()
		if err := dst.Merge(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPQuery measures an end-to-end SELECT through the HTTP
// stack (server + client, loopback).
func BenchmarkHTTPQuery(b *testing.B) {
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: microSchema})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		tbl.Insert(core.Row("s", float64(i%100)))
	}
	ts := httptest.NewServer(server.New(db))
	defer ts.Close()
	c := server.NewClient(ts.URL, ts.Client())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := c.Query("SELECT device, COUNT(*) AS n FROM t GROUP BY device")
		if err != nil {
			b.Fatal(err)
		}
		if len(g.Rows) != 1 {
			b.Fatal("bad grid")
		}
	}
}

// BenchmarkIngestPipeline measures the full source->refine->insert path.
func BenchmarkIngestPipeline(b *testing.B) {
	gen := workload.NewIoT(100, 1)
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	tbl, err := db.CreateTable("t", core.TableConfig{Schema: gen.Schema()})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tbl.Insert(gen.Next()); err != nil {
			b.Fatal(err)
		}
	}
}

// prunedScanTable builds a 100k extent whose seq column grows
// monotonically with insertion order, so its values correlate with the
// segment layout exactly the way the paper's insertion-time axis
// intends — range predicates over seq can skip whole ID ranges.
func prunedScanTable(b *testing.B, shards, n int) (*core.DB, *core.Table) {
	b.Helper()
	schema := tuple.MustSchema(
		tuple.Column{Name: "seq", Kind: tuple.KindInt},
		tuple.Column{Name: "temp", Kind: tuple.KindFloat},
		tuple.Column{Name: "device", Kind: tuple.KindString},
	)
	db, err := core.Open(core.DBConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tbl, err := db.CreateTable("p", core.TableConfig{Schema: schema, Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	rows := make([][]tuple.Value, 1024)
	for done := 0; done < n; {
		batch := len(rows)
		if rem := n - done; rem < batch {
			batch = rem
		}
		for i := 0; i < batch; i++ {
			seq := done + i
			rows[i] = core.Row(seq, float64(seq%100), fmt.Sprintf("sensor-%d", seq%32))
		}
		if _, err := tbl.InsertBatch(rows[:batch]); err != nil {
			b.Fatal(err)
		}
		done += batch
	}
	return db, tbl
}

// BenchmarkPrunedScan measures what zone-map segment pruning buys on a
// selective scan: mode=pruned consults the per-segment summaries and
// skips non-overlapping ID ranges before touching a tuple, mode=off
// (QueryOpts.NoPrune) visits every live tuple. Both run the compiled
// predicate closures; the delta is pruning alone. Custom metrics
// report the per-op pruning counters (prunedsegs/op, skippedtuples/op)
// that fungusbench -benchjson carries into BENCH_ci.json.
func BenchmarkPrunedScan(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 4, 8} {
		_, tbl := prunedScanTable(b, shards, n)
		for _, sel := range []float64{0.001, 0.1, 1.0} {
			want := int(float64(n) * sel)
			pq, err := tbl.Prepare(fmt.Sprintf("SELECT seq FROM p WHERE seq >= %d", n-want))
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []string{"pruned", "off"} {
				opt := core.QueryOpts{NoPrune: mode == "off"}
				b.Run(fmt.Sprintf("sel=%g/shards=%d/prune=%s", sel, shards, mode), func(b *testing.B) {
					before := tbl.StoreStats()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						rows, err := pq.ExecuteOpts(opt)
						if err != nil {
							b.Fatal(err)
						}
						got := 0
						for rows.Next() {
							got++
						}
						if err := rows.Close(); err != nil {
							b.Fatal(err)
						}
						if got != want {
							b.Fatalf("answer %d, want %d", got, want)
						}
					}
					b.StopTimer()
					after := tbl.StoreStats()
					b.ReportMetric(float64(after.SegsPruned-before.SegsPruned)/float64(b.N), "prunedsegs/op")
					b.ReportMetric(float64(after.TuplesSkipped-before.TuplesSkipped)/float64(b.N), "skippedtuples/op")
				})
			}
		}
	}
}

// BenchmarkOrderedTopK measures the ORDER BY push-down: mode=topk runs
// `ORDER BY temp DESC LIMIT 10` through the per-shard bounded-heap
// route (peak result memory O(shards × 10)), mode=barrier runs the
// same ordering without LIMIT — the materialise-then-sort path the
// push-down replaces — and reads only the first 10 rows.
func BenchmarkOrderedTopK(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 4, 8} {
		_, tbl := prunedScanTable(b, shards, n)
		run := func(src string) func(b *testing.B) {
			pq, err := tbl.Prepare(src)
			if err != nil {
				b.Fatal(err)
			}
			return func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rows, err := pq.Execute()
					if err != nil {
						b.Fatal(err)
					}
					got := 0
					for got < 10 && rows.Next() {
						got++
					}
					if err := rows.Close(); err != nil {
						b.Fatal(err)
					}
					if got != 10 {
						b.Fatalf("answer %d, want 10", got)
					}
				}
			}
		}
		b.Run(fmt.Sprintf("mode=topk/shards=%d", shards),
			run("SELECT seq, temp FROM p ORDER BY temp DESC, seq DESC LIMIT 10"))
		b.Run(fmt.Sprintf("mode=barrier/shards=%d", shards),
			run("SELECT seq, temp FROM p ORDER BY temp DESC, seq DESC"))
	}
}

// BenchmarkVectorizedScan measures the columnar batch matcher against
// the tuple-at-a-time interpreter on a materialising scan. NoPrune on
// both sides keeps every segment in play, so the delta is predicate
// evaluation and row materialisation alone: vec=on lowers the WHERE
// into column-wise kernels that produce a selection bitmap per 1k-row
// batch and decodes only the matches; vec=off evaluates the compiled
// closures tuple by tuple.
func BenchmarkVectorizedScan(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 4, 8} {
		_, tbl := prunedScanTable(b, shards, n)
		for _, sel := range []float64{0.001, 0.1, 1.0} {
			want := int(float64(n) * sel)
			pq, err := tbl.Prepare(fmt.Sprintf("SELECT seq FROM p WHERE seq >= %d", n-want))
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []string{"on", "off"} {
				opt := core.QueryOpts{NoPrune: true, NoVectorize: mode == "off"}
				b.Run(fmt.Sprintf("sel=%g/shards=%d/vec=%s", sel, shards, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						rows, err := pq.ExecuteOpts(opt)
						if err != nil {
							b.Fatal(err)
						}
						got := 0
						for rows.Next() {
							got++
						}
						if err := rows.Close(); err != nil {
							b.Fatal(err)
						}
						if got != want {
							b.Fatalf("answer %d, want %d", got, want)
						}
					}
				})
			}
		}
	}
}

// BenchmarkVectorizedAgg measures whole-batch aggregate folding: the
// distributed COUNT/SUM/MIN/MAX route consumes selection bitmaps and
// folds matching rows straight out of the column slices, with no
// per-tuple materialisation at all. sel=1 (an empty-WHERE full-extent
// aggregate) is the paper's headline case: pure column arithmetic over
// contiguous memory versus decoding every tuple just to add one field.
func BenchmarkVectorizedAgg(b *testing.B) {
	const n = 100_000
	for _, shards := range []int{1, 4, 8} {
		_, tbl := prunedScanTable(b, shards, n)
		for _, sel := range []float64{0.001, 0.1, 1.0} {
			want := int(float64(n) * sel)
			src := fmt.Sprintf(
				"SELECT COUNT(*) AS c, SUM(temp) AS s, MIN(temp) AS lo, MAX(temp) AS hi FROM p WHERE seq >= %d",
				n-want)
			if sel == 1.0 {
				src = "SELECT COUNT(*) AS c, SUM(temp) AS s, MIN(temp) AS lo, MAX(temp) AS hi FROM p"
			}
			pq, err := tbl.Prepare(src)
			if err != nil {
				b.Fatal(err)
			}
			for _, mode := range []string{"on", "off"} {
				opt := core.QueryOpts{NoPrune: true, NoVectorize: mode == "off"}
				b.Run(fmt.Sprintf("sel=%g/shards=%d/vec=%s", sel, shards, mode), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						rows, err := pq.ExecuteOpts(opt)
						if err != nil {
							b.Fatal(err)
						}
						if !rows.Next() {
							b.Fatal("aggregate returned no row")
						}
						if got := int(rows.Values()[0].AsInt()); got != want {
							b.Fatalf("COUNT %d, want %d", got, want)
						}
						if err := rows.Close(); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}
